//! The range-sharded engine: [`ShardedMap`] composes N inner
//! [`ConcurrentMap`] instances — each a *whole* paper-instance with its own
//! rebalancer service and epoch domain — behind a fence-key shard directory.
//!
//! # Why sharding
//!
//! The paper's concurrent PMA funnels every multi-gate rebalance through one
//! master/worker service (§3.3) and every resize through one entry pointer
//! (§3.4). A single instance therefore has one hot rebalancer, one epoch
//! domain and at most one resize in flight — a scalability ceiling under
//! write-heavy multi-core load. Range sharding multiplies all three: each
//! shard owns a disjoint key range `[lo, hi]` and runs its own service, so
//! rebalances, resizes and combining all proceed in parallel across shards.
//!
//! # Directory and routing
//!
//! The shard directory is an immutable, sorted array of `(fence, shard)`
//! entries covering the whole key domain; point operations binary-search it
//! in `O(log S)` and then run entirely inside one inner instance. The
//! directory is published through a single [`AtomicPtr`] and reclaimed with
//! the same epoch machinery the PMA uses for resizes
//! ([`pma_core::concurrent::epoch`]): readers pin, load, and never block a
//! re-publication.
//!
//! # Ordered scans
//!
//! Because shards partition the key space into *disjoint ascending* ranges,
//! the k-way merge of the per-shard ordered streams reduces to visiting the
//! shards in directory order — each shard's stream is already sorted and the
//! fences guarantee stream `i` ends strictly below stream `i+1`.
//! [`ShardedMap::scan_all`]/[`ShardedMap::scan_range`] fold the per-shard
//! streams concurrently (the merge of [`ScanStats`] is order-insensitive)
//! while [`ShardedMap::range`] walks the covering shards sequentially so the
//! visitor observes the global ascending order.
//!
//! # Splits and merges
//!
//! A split rebuilds a hot shard into two halves with the bulk loader
//! (`Registry::build_loaded`, PR 2's presized one-pass path) and publishes a
//! new directory, mirroring §3.4's resize publication: writers coordinate
//! through a per-shard latch (shared for point ops, exclusive for the
//! rebuild) plus a `retired` flag, so an operation that raced the swap
//! retries through the fresh directory and nothing is lost. Merging two cold
//! neighbours is the same protocol over two latches. A lightweight monitor
//! thread drives both from per-shard op/len counters.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use pma_common::{
    check_sorted, dedup_sorted_last_wins, CombiningStats, ConcurrentMap, Key, PmaError, Registry,
    ScanStats, Value, KEY_MAX, KEY_MIN,
};
use pma_core::concurrent::epoch::{EpochRegistry, GarbageBin};

use crate::stats::{EngineStats, EngineStatsSnapshot};

/// Configuration of a [`ShardedMap`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards the directory starts with (≥ 1).
    pub shards: usize,
    /// Registry spec of the inner structure each shard instantiates
    /// (e.g. `"pma-batch:100"`). Resolved through the registry handed to the
    /// constructor; nesting `sharded` specs is rejected.
    pub inner_spec: String,
    /// A shard whose element count exceeds this is eligible for a split.
    pub split_above: usize,
    /// Two adjacent shards whose combined element count is below this are
    /// eligible for a merge.
    pub merge_below: usize,
    /// Cadence of the load monitor (split/merge decisions and directory
    /// garbage collection).
    pub monitor_interval: Duration,
    /// Whether the monitor performs splits/merges on its own. Manual
    /// [`ShardedMap::split_shard`]/[`ShardedMap::merge_shards`] calls work
    /// either way.
    pub auto_manage: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            inner_spec: "pma-batch:100".to_string(),
            split_above: 1 << 17,
            merge_below: 1 << 13,
            monitor_interval: Duration::from_millis(20),
            auto_manage: true,
        }
    }
}

impl ShardedConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PmaError> {
        if self.shards == 0 {
            return Err(PmaError::invalid("shards", "must be at least 1"));
        }
        if self.shards > 4096 {
            return Err(PmaError::invalid("shards", "more than 4096 shards"));
        }
        let inner_name = self.inner_spec.split(':').next().unwrap_or("").trim();
        if inner_name.is_empty() {
            return Err(PmaError::invalid("inner_spec", "must not be empty"));
        }
        if inner_name == "sharded" {
            return Err(PmaError::invalid(
                "inner_spec",
                "nesting sharded engines is not supported",
            ));
        }
        if self.merge_below > self.split_above {
            return Err(PmaError::invalid(
                "merge_below",
                format!(
                    "merge_below ({}) must not exceed split_above ({}) or the \
                     monitor would oscillate",
                    self.merge_below, self.split_above
                ),
            ));
        }
        Ok(())
    }
}

/// One shard: a disjoint key range `[lo, hi]` served by one inner instance.
struct Shard {
    /// Inclusive lower fence.
    lo: Key,
    /// Inclusive upper fence.
    hi: Key,
    /// The inner structure holding every element with key in `[lo, hi]`.
    map: Arc<dyn ConcurrentMap>,
    /// Structural latch: point updates hold it shared while they apply to
    /// `map`; a split/merge holds it exclusive for the whole rebuild, which
    /// both drains in-flight writers and blocks new ones until the fresh
    /// directory is published.
    latch: RwLock<()>,
    /// Set (under the exclusive latch, after the new directory is published)
    /// when this shard has been replaced; writers that were blocked on the
    /// latch re-route through the new directory.
    retired: AtomicBool,
    /// Operations routed to this shard since the monitor's last decay — the
    /// "heat" signal that picks which oversized shard to split first.
    ops: AtomicU64,
}

impl Shard {
    fn new(lo: Key, hi: Key, map: Arc<dyn ConcurrentMap>) -> Arc<Self> {
        Arc::new(Self {
            lo,
            hi,
            map,
            latch: RwLock::new(()),
            retired: AtomicBool::new(false),
            ops: AtomicU64::new(0),
        })
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("lo", &self.lo)
            .field("hi", &self.hi)
            .field("len", &self.map.len())
            .field("retired", &self.retired.load(Ordering::Relaxed))
            .finish()
    }
}

/// An immutable snapshot of the shard layout, published through the single
/// entry pointer. Shards untouched by a split/merge are shared (by `Arc`)
/// between consecutive directories, so their latches keep their identity.
#[derive(Debug)]
struct Directory {
    /// Shards in ascending fence order; `shards[0].lo == KEY_MIN`,
    /// `shards[last].hi == KEY_MAX`, and `shards[i + 1].lo ==
    /// shards[i].hi + 1` — the ranges tile the whole key domain.
    shards: Vec<Arc<Shard>>,
}

impl Directory {
    /// Index of the shard whose range contains `key` (`O(log S)`).
    #[inline]
    fn route(&self, key: Key) -> usize {
        // The first shard's lo is KEY_MIN, so the partition point is ≥ 1.
        self.shards.partition_point(|s| s.lo <= key) - 1
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        assert_eq!(self.shards[0].lo, KEY_MIN);
        assert_eq!(self.shards[self.shards.len() - 1].hi, KEY_MAX);
        for w in self.shards.windows(2) {
            assert!(w[0].hi < w[1].lo);
            assert_eq!(w[0].hi.wrapping_add(1), w[1].lo);
        }
    }
}

/// A unit of work executed by the engine's worker pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small persistent worker pool for cross-shard fan-out (parallel scans
/// and batch ingestion), mirroring the rebalancer's master/worker idiom.
///
/// The pool exists because the inner instances reclaim memory with per-thread
/// epoch slots that are claimed forever ([`EpochRegistry`]): fanning work out
/// on freshly spawned threads would claim a new slot in every inner registry
/// per call and exhaust the slot table. A fixed set of long-lived workers
/// keeps the slot usage bounded (one slot per worker per inner instance).
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(size: usize) -> Self {
        let (job_tx, job_rx) = unbounded::<Job>();
        let workers = (0..size.max(1))
            .map(|i| {
                let job_rx = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("pma-shard-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn a shard worker thread")
            })
            .collect();
        Self {
            job_tx: Some(job_tx),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        if let Some(tx) = &self.job_tx {
            let _ = tx.send(job);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel; the workers drain it and exit.
        self.job_tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// State shared between the public handle and the monitor thread.
struct Engine {
    config: ShardedConfig,
    /// A private single-entry registry holding the inner backend's
    /// [`pma_common::registry::BackendDef`], captured from the dispatching
    /// registry once at construction time. Splits and merges rebuild shards
    /// through it, so the engine never consults the (possibly local,
    /// possibly already mutated) registry it was built from again — and
    /// never reaches for `Registry::global`.
    inner: Registry,
    /// The single entry pointer of the engine (mirroring §3.4): always a
    /// valid `Box<Directory>` leaked into it, replaced atomically by
    /// splits/merges and reclaimed through `garbage`.
    dir: AtomicPtr<Directory>,
    epoch: EpochRegistry,
    garbage: GarbageBin<Box<Directory>>,
    /// Serialises structural changes (splits, merges) so at most one
    /// directory re-publication is in flight.
    maintenance: Mutex<()>,
    /// Workers executing cross-shard fan-out (scans, batch runs).
    pool: WorkerPool,
    stats: EngineStats,
    /// Combining counters absorbed from shards retired by splits/merges
    /// (their inner instances die with their counters): summed into
    /// `combining_stats` so a `late_replays` hit can never be masked by a
    /// later structural rebuild of the shard that recorded it.
    retired_owned_applies: AtomicU64,
    retired_late_replays: AtomicU64,
    stop: AtomicBool,
}

impl Engine {
    /// # Safety
    /// The caller must hold a pin on `self.epoch` for the lifetime of the
    /// returned reference.
    unsafe fn dir_ref(&self) -> &Directory {
        &*self.dir.load(Ordering::Acquire)
    }

    /// Folds a soon-to-be-retired shard's combining counters into the
    /// engine-level accumulators. Called under the shard's exclusive latch,
    /// after its flush (the inner instance is quiescent, so the snapshot is
    /// final) and **before** the directory swap: a concurrent
    /// `combining_stats` reader may transiently count the shard twice (once
    /// live, once absorbed), which only overstates — the reverse order would
    /// open a window where a `late_replays` hit is counted in neither place
    /// and a protocol violation could be masked.
    fn absorb_retired_counters(&self, shard: &Shard) {
        if let Some(stats) = shard.map.combining_stats() {
            self.retired_owned_applies
                .fetch_add(stats.owned_applies, Ordering::Relaxed);
            self.retired_late_replays
                .fetch_add(stats.late_replays, Ordering::Relaxed);
        }
    }

    /// Publishes `dir` as the new directory and retires the old one into the
    /// epoch garbage bin (freed once no pinned reader can still observe it).
    fn publish(&self, dir: Directory) {
        #[cfg(debug_assertions)]
        dir.check_invariants();
        let fresh = Box::into_raw(Box::new(dir));
        let old = self.dir.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` was the uniquely-owned published directory; it is now
        // unreachable from the entry pointer and owned by the garbage bin.
        self.garbage
            .retire(&self.epoch, unsafe { Box::from_raw(old) });
    }

    /// Drains the contents of `shard` into a sorted vector. The caller must
    /// hold the shard's exclusive latch (so no writer is mid-flight) and have
    /// flushed the inner map (so no combining queue holds pending work).
    fn collect_shard(shard: &Shard) -> Vec<(Key, Value)> {
        let mut items = Vec::with_capacity(shard.map.len());
        shard
            .map
            .range(shard.lo, shard.hi, &mut |k, v| items.push((k, v)));
        items
    }

    /// Splits the shard at directory index `idx` into two halves at its
    /// median key. Returns `Ok(false)` when the shard holds fewer than two
    /// elements (nothing to split) or the index is stale.
    fn split_shard(&self, idx: usize) -> Result<bool, PmaError> {
        let _structural = self.maintenance.lock();
        let _pin = self.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.dir_ref() };
        if idx >= dir.shards.len() {
            return Ok(false);
        }
        let shard = Arc::clone(&dir.shards[idx]);
        let exclusive = shard.latch.write();
        shard.map.flush();
        let items = Self::collect_shard(&shard);
        if items.len() < 2 {
            return Ok(false);
        }
        // The boundary is the median key; keys are distinct and ascending, so
        // `boundary > items[0].0 >= shard.lo` and both halves are non-empty.
        let mid = items.len() / 2;
        let boundary = items[mid].0;
        debug_assert!(boundary > shard.lo && boundary <= shard.hi);
        let left = self
            .inner
            .build_loaded(&self.config.inner_spec, &items[..mid])?;
        let right = self
            .inner
            .build_loaded(&self.config.inner_spec, &items[mid..])?;

        let mut shards = Vec::with_capacity(dir.shards.len() + 1);
        shards.extend(dir.shards[..idx].iter().cloned());
        shards.push(Shard::new(shard.lo, boundary - 1, left));
        shards.push(Shard::new(boundary, shard.hi, right));
        shards.extend(dir.shards[idx + 1..].iter().cloned());
        self.absorb_retired_counters(&shard);
        self.publish(Directory { shards });
        // Publish-then-retire, all under the exclusive latch: writers that
        // were blocked on the latch wake to a retired shard and re-route
        // through the directory we just published.
        shard.retired.store(true, Ordering::Release);
        drop(exclusive);
        EngineStats::bump(&self.stats.shard_splits);
        self.garbage.collect(&self.epoch);
        Ok(true)
    }

    /// Merges the shards at directory indices `idx` and `idx + 1` into one.
    /// Returns `Ok(false)` when `idx + 1` is out of bounds.
    fn merge_shards(&self, idx: usize) -> Result<bool, PmaError> {
        let _structural = self.maintenance.lock();
        let _pin = self.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.dir_ref() };
        if idx + 1 >= dir.shards.len() {
            return Ok(false);
        }
        let left = Arc::clone(&dir.shards[idx]);
        let right = Arc::clone(&dir.shards[idx + 1]);
        // Lower index first; `maintenance` already excludes other structural
        // ops, so the order only has to be self-consistent.
        let left_exclusive = left.latch.write();
        let right_exclusive = right.latch.write();
        left.map.flush();
        right.map.flush();
        // The two runs are disjoint and ascending, so concatenation is the
        // merge.
        let mut items = Self::collect_shard(&left);
        items.extend(Self::collect_shard(&right));
        let merged = self.inner.build_loaded(&self.config.inner_spec, &items)?;

        let mut shards = Vec::with_capacity(dir.shards.len() - 1);
        shards.extend(dir.shards[..idx].iter().cloned());
        shards.push(Shard::new(left.lo, right.hi, merged));
        shards.extend(dir.shards[idx + 2..].iter().cloned());
        self.absorb_retired_counters(&left);
        self.absorb_retired_counters(&right);
        self.publish(Directory { shards });
        left.retired.store(true, Ordering::Release);
        right.retired.store(true, Ordering::Release);
        drop(right_exclusive);
        drop(left_exclusive);
        EngineStats::bump(&self.stats.shard_merges);
        self.garbage.collect(&self.epoch);
        Ok(true)
    }

    /// One monitor round: decay the per-shard heat counters, split the
    /// hottest oversized shard, or merge the coldest undersized neighbours.
    fn maintain(&self) {
        enum Plan {
            Split(usize),
            Merge(usize),
        }
        let plan = {
            let _pin = self.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.dir_ref() };
            let mut split: Option<(usize, u64)> = None;
            for (i, shard) in dir.shards.iter().enumerate() {
                let heat = shard.ops.load(Ordering::Relaxed);
                shard.ops.store(heat / 2, Ordering::Relaxed);
                if shard.map.len() > self.config.split_above
                    && split.is_none_or(|(_, best)| heat > best)
                {
                    split = Some((i, heat));
                }
            }
            if let Some((i, _)) = split {
                Some(Plan::Split(i))
            } else {
                let mut merge: Option<(usize, usize)> = None;
                for i in 0..dir.shards.len().saturating_sub(1) {
                    let sum = dir.shards[i].map.len() + dir.shards[i + 1].map.len();
                    if sum < self.config.merge_below && merge.is_none_or(|(_, best)| sum < best) {
                        merge = Some((i, sum));
                    }
                }
                merge.map(|(i, _)| Plan::Merge(i))
            }
        };
        // Structural ops re-read the directory under the maintenance lock, so
        // a stale index at worst splits/merges a different (still live) shard.
        let result = match plan {
            Some(Plan::Split(i)) => self.split_shard(i),
            Some(Plan::Merge(i)) => self.merge_shards(i),
            None => Ok(false),
        };
        // The monitor must survive a failed attempt (e.g. the inner loader
        // erroring) — count it and keep serving the remaining shards rather
        // than dying and silently disabling auto management.
        if result.is_err() {
            EngineStats::bump(&self.stats.monitor_errors);
        }
    }
}

fn monitor_loop(engine: Arc<Engine>) {
    let step = Duration::from_millis(2);
    let mut since_round = Duration::ZERO;
    while !engine.stop.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since_round += step;
        if since_round < engine.config.monitor_interval {
            continue;
        }
        since_round = Duration::ZERO;
        engine.garbage.collect(&engine.epoch);
        if engine.config.auto_manage {
            engine.maintain();
        }
    }
}

/// Evenly divides the whole key domain into `n` contiguous inclusive ranges.
fn uniform_bounds(n: usize) -> Vec<(Key, Key)> {
    let n = n.max(1) as i128;
    let span = (KEY_MAX as i128 - KEY_MIN as i128 + 1) / n;
    (0..n)
        .map(|i| {
            let lo = if i == 0 {
                KEY_MIN
            } else {
                (KEY_MIN as i128 + span * i) as Key
            };
            let hi = if i == n - 1 {
                KEY_MAX
            } else {
                (KEY_MIN as i128 + span * (i + 1) - 1) as Key
            };
            (lo, hi)
        })
        .collect()
}

/// Plans the shard layout of a bulk load: up to `n` contiguous runs of
/// roughly equal size, cut at key boundaries so the fences stay strictly
/// increasing. Returns `(lo, hi, start, end)` per shard with `items[start..
/// end]` the shard's run; fewer than `n` shards come back when the input has
/// too few distinct keys to cut.
fn plan_shards(items: &[(Key, Value)], n: usize) -> Vec<(Key, Key, usize, usize)> {
    if items.is_empty() {
        return uniform_bounds(n)
            .into_iter()
            .map(|(lo, hi)| (lo, hi, 0, 0))
            .collect();
    }
    let n = n.max(1);
    let mut cuts: Vec<usize> = Vec::with_capacity(n + 1);
    cuts.push(0);
    for i in 1..n {
        let target = (i * items.len() / n).max(cuts[cuts.len() - 1] + 1);
        if target >= items.len() {
            break;
        }
        cuts.push(target);
    }
    cuts.push(items.len());
    let mut plan = Vec::with_capacity(cuts.len() - 1);
    for (j, w) in cuts.windows(2).enumerate() {
        let (start, end) = (w[0], w[1]);
        let lo = if j == 0 { KEY_MIN } else { items[start].0 };
        let hi = if end == items.len() {
            KEY_MAX
        } else {
            items[end].0 - 1
        };
        plan.push((lo, hi, start, end));
    }
    plan
}

/// A range-partitioned [`ConcurrentMap`] composing N inner instances behind
/// a fence-key shard directory. See the [module docs](self) for the design.
///
/// # Examples
/// ```
/// use pma_common::{ConcurrentMap, Registry};
/// use pma_engine::{ShardedConfig, ShardedMap};
///
/// pma_core::register_backends(Registry::global());
/// let config = ShardedConfig {
///     shards: 4,
///     inner_spec: "pma-batch:1".to_string(),
///     ..ShardedConfig::default()
/// };
/// let map = ShardedMap::new(config, Registry::global()).unwrap();
/// map.insert(1, 10);
/// map.insert(-1, -10);
/// assert_eq!(map.get(1), Some(10));
/// assert_eq!(map.scan_all().count, 2);
/// assert_eq!(map.num_shards(), 4);
/// ```
pub struct ShardedMap {
    engine: Arc<Engine>,
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.num_shards())
            .field("len", &self.len())
            .field("config", &self.engine.config)
            .finish()
    }
}

impl ShardedMap {
    /// Captures the inner backend's definition from the dispatching
    /// `registry` into a private single-entry registry the engine owns, so
    /// later splits/merges rebuild shards without touching `registry` again.
    fn capture_inner(config: &ShardedConfig, registry: &Registry) -> Result<Registry, PmaError> {
        let inner = Registry::new();
        inner.register(registry.definition(&config.inner_spec)?);
        Ok(inner)
    }

    /// Creates an empty sharded map whose initial directory divides the key
    /// domain evenly into `config.shards` ranges; each shard is built from
    /// `config.inner_spec`, resolved against `registry` (the backend
    /// definition is captured once — `registry` is not retained).
    pub fn new(config: ShardedConfig, registry: &Registry) -> Result<Self, PmaError> {
        config.validate()?;
        let inner = Self::capture_inner(&config, registry)?;
        let shards = uniform_bounds(config.shards)
            .into_iter()
            .map(|(lo, hi)| Ok(Shard::new(lo, hi, inner.build(&config.inner_spec)?)))
            .collect::<Result<Vec<_>, PmaError>>()?;
        Self::start(config, inner, shards)
    }

    /// Builds a sharded map pre-populated with `items` (sorted by key, last
    /// entry wins on duplicates): the run is cut into `config.shards`
    /// roughly equal sub-runs at key boundaries — so the fences adapt to the
    /// data instead of assuming a uniform key domain — and each shard is
    /// constructed through the inner backend's native bulk loader.
    pub fn from_sorted(
        config: ShardedConfig,
        registry: &Registry,
        items: &[(Key, Value)],
    ) -> Result<Self, PmaError> {
        config.validate()?;
        check_sorted(items)?;
        let inner = Self::capture_inner(&config, registry)?;
        let items = dedup_sorted_last_wins(items);
        let shards = plan_shards(&items, config.shards)
            .into_iter()
            .map(|(lo, hi, start, end)| {
                let map = inner.build_loaded(&config.inner_spec, &items[start..end])?;
                Ok(Shard::new(lo, hi, map))
            })
            .collect::<Result<Vec<_>, PmaError>>()?;
        Self::start(config, inner, shards)
    }

    fn start(
        config: ShardedConfig,
        inner: Registry,
        shards: Vec<Arc<Shard>>,
    ) -> Result<Self, PmaError> {
        let spawn_monitor = config.monitor_interval > Duration::ZERO;
        let pool_size = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(8);
        let engine = Arc::new(Engine {
            config,
            inner,
            dir: AtomicPtr::new(Box::into_raw(Box::new(Directory { shards }))),
            epoch: EpochRegistry::new(),
            garbage: GarbageBin::new(),
            maintenance: Mutex::new(()),
            pool: WorkerPool::new(pool_size),
            stats: EngineStats::new(),
            retired_owned_applies: AtomicU64::new(0),
            retired_late_replays: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        #[cfg(debug_assertions)]
        {
            let _pin = engine.epoch.pin();
            // SAFETY: pinned above.
            unsafe { engine.dir_ref() }.check_invariants();
        }
        let monitor = spawn_monitor.then(|| {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("pma-shard-monitor".to_string())
                .spawn(move || monitor_loop(engine))
                .expect("failed to spawn the shard monitor thread")
        });
        Ok(Self { engine, monitor })
    }

    /// Number of shards in the current directory.
    pub fn num_shards(&self) -> usize {
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        unsafe { self.engine.dir_ref() }.shards.len()
    }

    /// `(lo, hi, len)` of every shard in directory order.
    pub fn shard_layout(&self) -> Vec<(Key, Key, usize)> {
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        unsafe { self.engine.dir_ref() }
            .shards
            .iter()
            .map(|s| (s.lo, s.hi, s.map.len()))
            .collect()
    }

    /// Snapshot of the engine's operation counters.
    pub fn stats(&self) -> EngineStatsSnapshot {
        self.engine.stats.snapshot()
    }

    /// Splits the shard at directory index `idx` at its median key,
    /// publishing a new directory. Returns `Ok(false)` when the shard holds
    /// fewer than two elements.
    pub fn split_shard(&self, idx: usize) -> Result<bool, PmaError> {
        self.engine.split_shard(idx)
    }

    /// Merges the shards at directory indices `idx` and `idx + 1`,
    /// publishing a new directory. Returns `Ok(false)` when out of bounds.
    pub fn merge_shards(&self, idx: usize) -> Result<bool, PmaError> {
        self.engine.merge_shards(idx)
    }

    /// Routes a point update to its shard and applies it under the shard's
    /// shared latch, retrying through the fresh directory when a concurrent
    /// split/merge retired the shard first.
    fn with_shard<R>(&self, key: Key, apply: impl Fn(&dyn ConcurrentMap) -> R) -> R {
        loop {
            let _pin = self.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.engine.dir_ref() };
            let shard = &dir.shards[dir.route(key)];
            let _shared = shard.latch.read();
            if shard.retired.load(Ordering::Acquire) {
                EngineStats::bump(&self.engine.stats.retired_retries);
                continue;
            }
            shard.ops.fetch_add(1, Ordering::Relaxed);
            EngineStats::bump(&self.engine.stats.routed_ops);
            return apply(shard.map.as_ref());
        }
    }

    /// Folds the scan of every shard whose range intersects `[lo, hi]`,
    /// running the per-shard streams concurrently when more than one shard
    /// (with elements) is covered. Correct because the streams are disjoint:
    /// merging [`ScanStats`] is order-insensitive.
    fn fold_scan(&self, lo: Key, hi: Key) -> ScanStats {
        let mut total = ScanStats::default();
        if lo > hi {
            return total;
        }
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let first = dir.route(lo);
        let last = dir.route(hi);
        let covered = &dir.shards[first..=last];
        let busy: Vec<&Arc<Shard>> = covered.iter().filter(|s| !s.map.is_empty()).collect();
        match busy.len() {
            0 => {}
            1 => {
                let s = busy[0];
                total.merge(&s.map.scan_range(lo.max(s.lo), hi.min(s.hi)));
            }
            _ => {
                EngineStats::bump(&self.engine.stats.cross_shard_scans);
                // Fan the per-shard streams out to the persistent worker
                // pool (never to fresh threads — see [`WorkerPool`]) and
                // fold the replies; ScanStats::merge is order-insensitive,
                // so completion order does not matter.
                let (reply_tx, reply_rx) = unbounded();
                let mut jobs = 0usize;
                for s in &busy {
                    let shard = Arc::clone(s);
                    let reply = reply_tx.clone();
                    let (lo, hi) = (lo.max(s.lo), hi.min(s.hi));
                    self.engine.pool.submit(Box::new(move || {
                        let _ = reply.send(shard.map.scan_range(lo, hi));
                    }));
                    jobs += 1;
                }
                drop(reply_tx);
                for _ in 0..jobs {
                    total.merge(&reply_rx.recv().expect("a shard scan worker died"));
                }
            }
        }
        total
    }
}

impl Drop for ShardedMap {
    fn drop(&mut self) {
        self.engine.stop.store(true, Ordering::Release);
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        // SAFETY: `&mut self` means no client can be pinned any more.
        unsafe { drop(Box::from_raw(self.engine.dir.load(Ordering::Acquire))) };
        self.engine.garbage.clear();
    }
}

impl ConcurrentMap for ShardedMap {
    fn insert(&self, key: Key, value: Value) {
        self.with_shard(key, |map| map.insert(key, value));
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.with_shard(key, |map| map.remove(key))
    }

    fn get(&self, key: Key) -> Option<Value> {
        // Lookups skip the shard latch: a concurrent split serves them from
        // the (still fully populated, no longer mutated) retired instance,
        // which is linearizable because every update that completed before
        // this lookup started either predates the split's exclusive latch
        // (and is in the retired instance) or postdates the directory swap
        // (in which case this lookup, having loaded the directory after the
        // swap, routes to the fresh shard).
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let shard = &dir.shards[dir.route(key)];
        EngineStats::bump(&self.engine.stats.routed_ops);
        shard.map.get(key)
    }

    fn len(&self) -> usize {
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        dir.shards.iter().map(|s| s.map.len()).sum()
    }

    fn scan_all(&self) -> ScanStats {
        self.fold_scan(KEY_MIN, KEY_MAX)
    }

    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        self.fold_scan(lo, hi)
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let first = dir.route(lo);
        let last = dir.route(hi);
        if last > first {
            EngineStats::bump(&self.engine.stats.cross_shard_scans);
        }
        // Sequential walk in directory order: the shard ranges ascend, so
        // concatenating the per-shard ordered streams preserves the global
        // order the visitor contract requires.
        for shard in &dir.shards[first..=last] {
            shard.map.range(lo.max(shard.lo), hi.min(shard.hi), visitor);
        }
    }

    fn insert_batch(&self, items: &[(Key, Value)]) {
        // Split the batch at the shard fences and hand each shard its run
        // through the inner native batch path. Runs that race a split/merge
        // (their shard retired under them) are re-split against the fresh
        // directory and retried — the loop terminates because structural ops
        // are serialised and each retry observes a newer directory.
        let mut remaining: Vec<(Key, Value)> = items.to_vec();
        while !remaining.is_empty() {
            let _pin = self.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.engine.dir_ref() };
            let mut runs: Vec<Vec<(Key, Value)>> = vec![Vec::new(); dir.shards.len()];
            for &(k, v) in &remaining {
                runs[dir.route(k)].push((k, v));
            }
            let occupied = runs.iter().filter(|r| !r.is_empty()).count();
            EngineStats::add(&self.engine.stats.batch_runs, occupied as u64);
            // Applies one run under its shard's shared latch; hands the run
            // back when the shard was retired by a concurrent split/merge.
            fn apply_run(shard: &Shard, run: Vec<(Key, Value)>) -> Option<Vec<(Key, Value)>> {
                let _shared = shard.latch.read();
                if shard.retired.load(Ordering::Acquire) {
                    return Some(run);
                }
                shard.ops.fetch_add(run.len() as u64, Ordering::Relaxed);
                shard.map.insert_batch(&run);
                None
            }
            let mut leftovers: Vec<(Key, Value)> = Vec::new();
            if occupied > 1 && remaining.len() >= 2048 {
                // Ingest per-shard runs in parallel on the persistent worker
                // pool (the §3.5 batch path of each inner instance runs
                // independently per shard).
                let (reply_tx, reply_rx) = unbounded();
                let mut jobs = 0usize;
                for (i, run) in runs.into_iter().enumerate() {
                    if run.is_empty() {
                        continue;
                    }
                    let shard = Arc::clone(&dir.shards[i]);
                    let reply = reply_tx.clone();
                    self.engine.pool.submit(Box::new(move || {
                        let _ = reply.send(apply_run(&shard, run));
                    }));
                    jobs += 1;
                }
                drop(reply_tx);
                for _ in 0..jobs {
                    if let Some(run) = reply_rx.recv().expect("a batch worker died") {
                        EngineStats::bump(&self.engine.stats.retired_retries);
                        leftovers.extend(run);
                    }
                }
            } else {
                for (i, run) in runs.into_iter().enumerate() {
                    if !run.is_empty() {
                        if let Some(run) = apply_run(&dir.shards[i], run) {
                            EngineStats::bump(&self.engine.stats.retired_retries);
                            leftovers.extend(run);
                        }
                    }
                }
            }
            // Leftovers from distinct shards stay internally ordered per key
            // (same-key entries always land in the same shard), so upsert
            // semantics are preserved across retries.
            remaining = leftovers;
        }
    }

    fn flush(&self) {
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        for shard in &dir.shards {
            shard.map.flush();
        }
    }

    fn combining_stats(&self) -> Option<CombiningStats> {
        // Live shards plus the counters absorbed from shards retired by
        // splits/merges (`absorb_retired_counters`), so a `late_replays` hit
        // recorded before a structural rebuild is never masked by it.
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let mut total = CombiningStats {
            owned_applies: self.engine.retired_owned_applies.load(Ordering::Relaxed),
            late_replays: self.engine.retired_late_replays.load(Ordering::Relaxed),
        };
        let mut any = false;
        for shard in &dir.shards {
            if let Some(stats) = shard.map.combining_stats() {
                total.merge(&stats);
                any = true;
            }
        }
        any.then_some(total)
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> &'static Registry {
        pma_core::register_backends(Registry::global());
        Registry::global()
    }

    fn config(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            inner_spec: "pma-batch:1".to_string(),
            auto_manage: false,
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn uniform_bounds_tile_the_domain() {
        for n in [1, 2, 3, 8, 17] {
            let bounds = uniform_bounds(n);
            assert_eq!(bounds.len(), n);
            assert_eq!(bounds[0].0, KEY_MIN);
            assert_eq!(bounds[n - 1].1, KEY_MAX);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1.wrapping_add(1), w[1].0);
                assert!(w[0].0 <= w[0].1);
            }
        }
    }

    #[test]
    fn plan_shards_cuts_at_key_boundaries() {
        let items: Vec<(Key, Value)> = (0..100).map(|k| (k * 2, k)).collect();
        let plan = plan_shards(&items, 4);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].0, KEY_MIN);
        assert_eq!(plan[3].1, KEY_MAX);
        let covered: usize = plan.iter().map(|&(_, _, s, e)| e - s).sum();
        assert_eq!(covered, 100);
        for w in plan.windows(2) {
            assert_eq!(w[0].1.wrapping_add(1), w[1].0);
            assert_eq!(w[0].3, w[1].2);
        }
        // More shards than distinct keys: the plan degrades gracefully.
        let tiny = plan_shards(&[(5, 0), (6, 0)], 8);
        assert!(tiny.len() <= 2);
        // Empty input: uniform fences with empty runs.
        let empty = plan_shards(&[], 3);
        assert_eq!(empty.len(), 3);
        assert!(empty.iter().all(|&(_, _, s, e)| s == e));
    }

    #[test]
    fn point_ops_route_across_shards() {
        let map = ShardedMap::new(config(4), registry()).unwrap();
        let keys = [KEY_MIN, KEY_MIN / 2, -17, 0, 17, KEY_MAX / 2, KEY_MAX];
        for (i, &k) in keys.iter().enumerate() {
            map.insert(k, i as Value);
        }
        map.flush();
        assert_eq!(map.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(map.get(k), Some(i as Value), "key {k}");
        }
        assert_eq!(map.remove(0), Some(3));
        map.flush();
        assert_eq!(map.len(), keys.len() - 1);
        assert!(map.stats().routed_ops > 0);
    }

    #[test]
    fn cross_shard_scans_preserve_global_order() {
        let map = ShardedMap::new(config(8), registry()).unwrap();
        let keys: Vec<Key> = (-500..500).map(|k| k * (KEY_MAX / 1000)).collect();
        for &k in &keys {
            map.insert(k, k.wrapping_mul(3));
        }
        map.flush();
        let mut seen = Vec::new();
        map.range(KEY_MIN, KEY_MAX, &mut |k, _| seen.push(k));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
        let stats = map.scan_all();
        assert_eq!(stats.count as usize, keys.len());
        assert!(map.stats().cross_shard_scans > 0);
        // A bounded range crossing shard fences agrees with the visitor path.
        let (lo, hi) = (sorted[100], sorted[900]);
        let ranged = map.scan_range(lo, hi);
        let mut expected = ScanStats::default();
        map.range(lo, hi, &mut |k, v| expected.visit(k, v));
        assert_eq!(ranged, expected);
        assert_eq!(map.scan_range(10, -10), ScanStats::default());
    }

    #[test]
    fn split_and_merge_keep_contents() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..2_000i64 {
            map.insert(k, -k);
        }
        map.flush();
        assert!(map.split_shard(0).unwrap());
        assert_eq!(map.num_shards(), 2);
        assert!(map.split_shard(1).unwrap());
        assert_eq!(map.num_shards(), 3);
        assert_eq!(map.len(), 2_000);
        assert_eq!(map.scan_all().count, 2_000);
        for k in (0..2_000i64).step_by(97) {
            assert_eq!(map.get(k), Some(-k));
        }
        let layout = map.shard_layout();
        assert_eq!(layout[0].0, KEY_MIN);
        assert_eq!(layout[layout.len() - 1].1, KEY_MAX);
        // Updates keep flowing through the new directory.
        map.insert(5_000, 5);
        assert_eq!(map.get(5_000), Some(5));
        while map.num_shards() > 1 {
            assert!(map.merge_shards(0).unwrap());
        }
        map.flush();
        assert_eq!(map.len(), 2_001);
        assert_eq!(map.scan_all().count, 2_001);
        let stats = map.stats();
        assert_eq!(stats.shard_splits, 2);
        assert_eq!(stats.shard_merges, 2);
        // Splitting an empty or single-element shard is a no-op.
        let empty = ShardedMap::new(config(1), registry()).unwrap();
        assert!(!empty.split_shard(0).unwrap());
        assert!(!empty.merge_shards(0).unwrap());
    }

    #[test]
    fn from_sorted_adapts_fences_to_the_data() {
        let items: Vec<(Key, Value)> = (0..10_000i64).map(|k| (k, k * 2)).collect();
        let map = ShardedMap::from_sorted(config(4), registry(), &items).unwrap();
        assert_eq!(map.num_shards(), 4);
        assert_eq!(map.len(), 10_000);
        // Data-driven fences: every shard holds a non-trivial run.
        for (lo, hi, len) in map.shard_layout() {
            assert!(lo <= hi);
            assert!(len >= 1_000, "shard [{lo}, {hi}] only has {len} elements");
        }
        assert_eq!(map.scan_range(2_400, 7_600).count, 5_201);
        // Duplicates resolve to the last entry.
        let dup = ShardedMap::from_sorted(config(2), registry(), &[(1, 1), (1, 2)]).unwrap();
        assert_eq!(dup.get(1), Some(2));
        assert!(ShardedMap::from_sorted(config(2), registry(), &[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn batches_split_at_shard_fences() {
        let map = ShardedMap::new(config(4), registry()).unwrap();
        let step = KEY_MAX / 2_000;
        let items: Vec<(Key, Value)> = (-1_500..1_500i64).map(|k| (k * step, k)).collect();
        map.insert_batch(&items);
        map.flush();
        assert_eq!(map.len(), items.len());
        assert!(map.stats().batch_runs >= 2, "batch must fan out");
        let stats = map.scan_all();
        assert_eq!(stats.count as usize, items.len());
    }

    #[test]
    fn auto_monitor_splits_hot_and_merges_cold_shards() {
        let cfg = ShardedConfig {
            shards: 1,
            inner_spec: "pma-batch:1".to_string(),
            split_above: 1_000,
            merge_below: 64,
            monitor_interval: Duration::from_millis(5),
            auto_manage: true,
        };
        let map = ShardedMap::new(cfg, registry()).unwrap();
        for k in 0..6_000i64 {
            map.insert(k, k);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while map.stats().shard_splits == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(map.stats().shard_splits > 0, "monitor never split");
        map.flush();
        assert_eq!(map.len(), 6_000);
        assert_eq!(map.scan_all().count, 6_000);
        // Empty the map; the monitor merges the now-cold shards back down.
        for k in 0..6_000i64 {
            map.remove(k);
        }
        map.flush();
        while map.stats().shard_merges == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(map.stats().shard_merges > 0, "monitor never merged");
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ShardedConfig {
            shards: 0,
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            inner_spec: "sharded:2:pma-sync".to_string(),
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            inner_spec: " ".to_string(),
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            split_above: 10,
            merge_below: 20,
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedMap::new(config(1), registry()).is_ok());
        let unknown = ShardedConfig {
            inner_spec: "warp-drive".to_string(),
            ..config(2)
        };
        assert!(ShardedMap::new(unknown, registry()).is_err());
    }
}
