//! Operation counters exposed by the sharded engine, mirroring the
//! counter/snapshot plumbing of `pma_core::stats`.
//!
//! The counters serve the same two consumers: the experiment harness (e.g. to
//! report how many shard splits a workload triggered) and tests that assert a
//! specific code path — a split under concurrent writers, a batch fanned out
//! across shards — was actually exercised.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters. All increments use relaxed ordering: the
/// counters are diagnostics, not synchronisation.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Point operations (insert/remove/get) routed through the directory.
    pub routed_ops: AtomicU64,
    /// Operations that retried because they reached a shard retired by a
    /// concurrent split or merge.
    pub retired_retries: AtomicU64,
    /// Shard splits performed (hot shard rebuilt into two halves).
    pub shard_splits: AtomicU64,
    /// Shard merges performed (two cold neighbours rebuilt into one).
    pub shard_merges: AtomicU64,
    /// Per-shard runs dispatched by `insert_batch` after fence splitting.
    pub batch_runs: AtomicU64,
    /// Ordered scans that merged streams from more than one shard.
    pub cross_shard_scans: AtomicU64,
    /// Split/merge attempts by the monitor that returned an error (the
    /// monitor keeps running; a persistently non-zero counter means the
    /// inner backend's loader is failing).
    pub monitor_errors: AtomicU64,
}

impl EngineStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            routed_ops: self.routed_ops.load(Ordering::Relaxed),
            retired_retries: self.retired_retries.load(Ordering::Relaxed),
            shard_splits: self.shard_splits.load(Ordering::Relaxed),
            shard_merges: self.shard_merges.load(Ordering::Relaxed),
            batch_runs: self.batch_runs.load(Ordering::Relaxed),
            cross_shard_scans: self.cross_shard_scans.load(Ordering::Relaxed),
            monitor_errors: self.monitor_errors.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`EngineStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Point operations routed through the directory.
    pub routed_ops: u64,
    /// Operations retried after reaching a retired shard.
    pub retired_retries: u64,
    /// Shard splits performed.
    pub shard_splits: u64,
    /// Shard merges performed.
    pub shard_merges: u64,
    /// Per-shard runs dispatched by `insert_batch`.
    pub batch_runs: u64,
    /// Ordered scans merging more than one shard.
    pub cross_shard_scans: u64,
    /// Monitor split/merge attempts that returned an error.
    pub monitor_errors: u64,
}

impl EngineStatsSnapshot {
    /// Total directory re-publications (splits + merges).
    pub fn directory_swaps(&self) -> u64 {
        self.shard_splits + self.shard_merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = EngineStats::new();
        EngineStats::bump(&s.shard_splits);
        EngineStats::bump(&s.shard_merges);
        EngineStats::add(&s.routed_ops, 7);
        let snap = s.snapshot();
        assert_eq!(snap.shard_splits, 1);
        assert_eq!(snap.shard_merges, 1);
        assert_eq!(snap.routed_ops, 7);
        assert_eq!(snap.directory_swaps(), 2);
        assert_eq!(snap.batch_runs, 0);
    }
}
