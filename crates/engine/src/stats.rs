//! Operation counters exposed by the sharded engine, mirroring the
//! counter/snapshot plumbing of `pma_core::stats`.
//!
//! The counters serve the same two consumers: the experiment harness (e.g. to
//! report how many shard splits a workload triggered and how long its writers
//! were stalled by them) and tests that assert a specific code path — a split
//! under concurrent writers, a batch fanned out across shards, a thrashing
//! split suppressed by hysteresis — was actually exercised.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters. All increments use relaxed ordering: the
/// counters are diagnostics, not synchronisation.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Point operations (insert/remove/get) routed through the directory.
    pub routed_ops: AtomicU64,
    /// Operations that retried because they reached a shard retired by a
    /// concurrent split or merge.
    pub retired_retries: AtomicU64,
    /// Shard splits performed (hot shard rebuilt into two halves).
    pub shard_splits: AtomicU64,
    /// Shard merges performed (two cold neighbours rebuilt into one).
    pub shard_merges: AtomicU64,
    /// Nanoseconds writers were fenced out by structural changes: the sum of
    /// every split/merge's install fence (delta-log hookup) and final fence
    /// (drain + publish). The whole point of the incremental protocol is to
    /// keep this far below the full rebuild time a stop-the-shard split
    /// charges to the write path.
    pub split_stall_ns: AtomicU64,
    /// Operations captured by split/merge delta logs while a copy-on-write
    /// rebuild was running (i.e. writes that would have been *blocked* under
    /// the stop-the-shard protocol).
    pub delta_ops: AtomicU64,
    /// Whole-run records captured by split/merge delta logs: an
    /// `insert_batch` arriving during a copy-on-write rebuild lands as at
    /// most one record per delta stripe (`DeltaLog::record_run`) instead of
    /// one record per item, so this counter staying ~64x below the items
    /// captured (`delta_ops`) is the no-decay regression signal.
    pub delta_runs: AtomicU64,
    /// Pre-fence chase rounds: drains of a split's delta log performed while
    /// writers were still landing, to shrink the final fenced drain.
    pub chase_rounds: AtomicU64,
    /// Writer back-offs because an in-flight split's delta log exceeded the
    /// backpressure cap (memory protection when the write rate outruns the
    /// copy; each wait is ~100µs with all latches released).
    pub delta_backpressure_waits: AtomicU64,
    /// Structural changes the load monitor suppressed because the triggering
    /// threshold crossing did not persist for the hysteresis window
    /// (split↔merge thrash when load hovers at a boundary).
    pub split_thrash_averted: AtomicU64,
    /// Per-shard runs dispatched by `insert_batch` after fence splitting.
    pub batch_runs: AtomicU64,
    /// Ordered scans that merged streams from more than one shard.
    pub cross_shard_scans: AtomicU64,
    /// Split/merge attempts by the monitor that returned an error (the
    /// monitor keeps running; a persistently non-zero counter means the
    /// inner backend's loader is failing).
    pub monitor_errors: AtomicU64,
}

impl EngineStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> ShardedStats {
        ShardedStats {
            routed_ops: self.routed_ops.load(Ordering::Relaxed),
            retired_retries: self.retired_retries.load(Ordering::Relaxed),
            shard_splits: self.shard_splits.load(Ordering::Relaxed),
            shard_merges: self.shard_merges.load(Ordering::Relaxed),
            split_stall_ns: self.split_stall_ns.load(Ordering::Relaxed),
            delta_ops: self.delta_ops.load(Ordering::Relaxed),
            delta_runs: self.delta_runs.load(Ordering::Relaxed),
            chase_rounds: self.chase_rounds.load(Ordering::Relaxed),
            delta_backpressure_waits: self.delta_backpressure_waits.load(Ordering::Relaxed),
            split_thrash_averted: self.split_thrash_averted.load(Ordering::Relaxed),
            batch_runs: self.batch_runs.load(Ordering::Relaxed),
            cross_shard_scans: self.cross_shard_scans.load(Ordering::Relaxed),
            monitor_errors: self.monitor_errors.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`EngineStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Point operations routed through the directory.
    pub routed_ops: u64,
    /// Operations retried after reaching a retired shard.
    pub retired_retries: u64,
    /// Shard splits performed.
    pub shard_splits: u64,
    /// Shard merges performed.
    pub shard_merges: u64,
    /// Nanoseconds writers were fenced out by splits/merges (install fences
    /// plus final drain/publish fences — *not* the copy phase, which runs
    /// with writers live).
    pub split_stall_ns: u64,
    /// Operations captured by split/merge delta logs during copy phases.
    pub delta_ops: u64,
    /// Whole-run delta records captured from `insert_batch` during copy
    /// phases (one stripe pass per run instead of per-item records).
    pub delta_runs: u64,
    /// Pre-fence drains of split delta logs (chase rounds).
    pub chase_rounds: u64,
    /// Writer back-offs due to delta-log backpressure.
    pub delta_backpressure_waits: u64,
    /// Structural changes suppressed by the monitor's hysteresis.
    pub split_thrash_averted: u64,
    /// Per-shard runs dispatched by `insert_batch`.
    pub batch_runs: u64,
    /// Ordered scans merging more than one shard.
    pub cross_shard_scans: u64,
    /// Monitor split/merge attempts that returned an error.
    pub monitor_errors: u64,
}

impl pma_common::obs::MetricSource for ShardedStats {
    fn observe(&self, out: &mut dyn pma_common::obs::Observe) {
        out.counter("routed_ops", self.routed_ops);
        out.counter("retired_retries", self.retired_retries);
        out.counter("shard_splits", self.shard_splits);
        out.counter("shard_merges", self.shard_merges);
        out.counter("split_stall_ns", self.split_stall_ns);
        out.counter("delta_ops", self.delta_ops);
        out.counter("delta_runs", self.delta_runs);
        out.counter("chase_rounds", self.chase_rounds);
        out.counter("delta_backpressure_waits", self.delta_backpressure_waits);
        out.counter("split_thrash_averted", self.split_thrash_averted);
        out.counter("batch_runs", self.batch_runs);
        out.counter("cross_shard_scans", self.cross_shard_scans);
        out.counter("monitor_errors", self.monitor_errors);
    }
}

/// Former name of [`ShardedStats`], kept for source compatibility.
pub type EngineStatsSnapshot = ShardedStats;

impl ShardedStats {
    /// Total directory re-publications (splits + merges).
    pub fn directory_swaps(&self) -> u64 {
        self.shard_splits + self.shard_merges
    }

    /// Microseconds writers were fenced out by structural changes (the unit
    /// the bench-smoke pipeline records).
    pub fn split_stall_us(&self) -> u64 {
        self.split_stall_ns / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = EngineStats::new();
        EngineStats::bump(&s.shard_splits);
        EngineStats::bump(&s.shard_merges);
        EngineStats::add(&s.routed_ops, 7);
        EngineStats::add(&s.split_stall_ns, 2_500);
        EngineStats::add(&s.delta_ops, 3);
        EngineStats::add(&s.delta_runs, 2);
        EngineStats::bump(&s.split_thrash_averted);
        let snap = s.snapshot();
        assert_eq!(snap.shard_splits, 1);
        assert_eq!(snap.shard_merges, 1);
        assert_eq!(snap.routed_ops, 7);
        assert_eq!(snap.directory_swaps(), 2);
        assert_eq!(snap.batch_runs, 0);
        assert_eq!(snap.split_stall_ns, 2_500);
        assert_eq!(snap.split_stall_us(), 2);
        assert_eq!(snap.delta_ops, 3);
        assert_eq!(snap.delta_runs, 2);
        assert_eq!(snap.split_thrash_averted, 1);
    }
}
