//! Graph analytics over the PMA-backed dynamic graph: the kind of
//! navigation-heavy, scan-heavy workloads the paper's introduction motivates
//! (dashboards over constantly changing graphs).

use std::collections::{HashMap, VecDeque};

use crate::graph::{DynamicGraph, VertexId};

/// Breadth-first search from `start`; returns the hop distance of every
/// reachable vertex (including `start` at distance 0).
pub fn bfs(graph: &DynamicGraph, start: VertexId) -> HashMap<VertexId, u32> {
    let mut dist: HashMap<VertexId, u32> = HashMap::new();
    if !graph.has_vertex(start) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist.insert(start, 0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        graph.for_each_neighbour(v, &mut |dst, _| {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(dst) {
                e.insert(d + 1);
                queue.push_back(dst);
            }
        });
    }
    dist
}

/// PageRank with the classic damping iteration. Returns the score of every
/// vertex; scores sum to (approximately) 1.
pub fn pagerank(graph: &DynamicGraph, iterations: usize, damping: f64) -> HashMap<VertexId, f64> {
    let vertices = graph.vertices();
    let n = vertices.len();
    if n == 0 {
        return HashMap::new();
    }
    let mut rank: HashMap<VertexId, f64> = vertices.iter().map(|&v| (v, 1.0 / n as f64)).collect();
    let out_degree: HashMap<VertexId, usize> =
        vertices.iter().map(|&v| (v, graph.out_degree(v))).collect();

    for _ in 0..iterations {
        let mut next: HashMap<VertexId, f64> = vertices
            .iter()
            .map(|&v| (v, (1.0 - damping) / n as f64))
            .collect();
        let mut dangling_mass = 0.0;
        for &v in &vertices {
            let share = rank[&v];
            let degree = out_degree[&v];
            if degree == 0 {
                dangling_mass += share;
                continue;
            }
            let contribution = damping * share / degree as f64;
            graph.for_each_neighbour(v, &mut |dst, _| {
                *next.entry(dst).or_insert((1.0 - damping) / n as f64) += contribution;
            });
        }
        // Spread the rank of dangling vertices evenly.
        let dangling_share = damping * dangling_mass / n as f64;
        for value in next.values_mut() {
            *value += dangling_share;
        }
        rank = next;
    }
    rank
}

/// Counts directed triangles `a -> b -> c -> a` (each triangle counted once
/// per rotation). A cheap connectivity statistic used by the example
/// workloads.
pub fn directed_triangles(graph: &DynamicGraph) -> u64 {
    let mut count = 0u64;
    for a in graph.vertices() {
        graph.for_each_neighbour(a, &mut |b, _| {
            graph.for_each_neighbour(b, &mut |c, _| {
                if graph.has_edge(c, a) {
                    count += 1;
                }
            });
        });
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_core::PmaParams;

    fn line_graph(n: u32) -> DynamicGraph {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        for v in 0..n.saturating_sub(1) {
            g.add_edge(v, v + 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn bfs_on_a_line() {
        let g = line_graph(10);
        let dist = bfs(&g, 0);
        assert_eq!(dist.len(), 10);
        for v in 0..10u32 {
            assert_eq!(dist[&v], v);
        }
        // Starting from the middle only reaches the tail (directed edges).
        let dist = bfs(&g, 5);
        assert_eq!(dist.len(), 5);
        assert_eq!(dist[&9], 4);
    }

    #[test]
    fn bfs_from_missing_vertex_is_empty() {
        let g = line_graph(3);
        assert!(bfs(&g, 99).is_empty());
    }

    #[test]
    fn bfs_handles_cycles() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(2, 0, 1).unwrap();
        let dist = bfs(&g, 0);
        assert_eq!(dist[&0], 0);
        assert_eq!(dist[&1], 1);
        assert_eq!(dist[&2], 2);
    }

    #[test]
    fn pagerank_sums_to_one_and_prefers_sinks_of_mass() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        // Star: every vertex points at vertex 0.
        for v in 1..20u32 {
            g.add_edge(v, 0, 1).unwrap();
        }
        let pr = pagerank(&g, 20, 0.85);
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total rank {total}");
        let centre = pr[&0];
        for v in 1..20u32 {
            assert!(centre > pr[&v], "centre must dominate vertex {v}");
        }
    }

    #[test]
    fn pagerank_on_empty_graph() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        assert!(pagerank(&g, 5, 0.85).is_empty());
    }

    #[test]
    fn triangle_counting() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(2, 0, 1).unwrap();
        // One directed triangle, counted once per rotation.
        assert_eq!(directed_triangles(&g), 3);
        g.add_edge(2, 1, 1).unwrap();
        // Still only rotations of the same directed cycle.
        assert_eq!(directed_triangles(&g), 3);
    }
}
