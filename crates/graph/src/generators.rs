//! Synthetic graph generators for the examples and benchmarks.
//!
//! The paper's follow-up work evaluates dynamic graphs on the LDBC social
//! network benchmark; as a stand-in that needs no external data, these
//! generators produce uniformly random and preferential-attachment
//! (scale-free, social-network-like) edge streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::VertexId;

/// A generated edge stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices referenced by the edges (`0..num_vertices`).
    pub num_vertices: u32,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(VertexId, VertexId)>,
}

/// Uniformly random directed graph: `num_edges` edges with endpoints drawn
/// uniformly from `0..num_vertices`. Self-loops are skipped.
pub fn uniform_random(num_vertices: u32, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let src = rng.gen_range(0..num_vertices);
        let dst = rng.gen_range(0..num_vertices);
        if src != dst {
            edges.push((src, dst));
        }
    }
    EdgeList {
        num_vertices,
        edges,
    }
}

/// Preferential-attachment (Barabási–Albert-style) graph: each new vertex
/// attaches `edges_per_vertex` out-edges to targets chosen proportionally to
/// their current degree, producing the skewed degree distribution of social
/// networks — and therefore skewed update patterns on the edge array, the
/// scenario the paper's asynchronous update modes target.
pub fn preferential_attachment(num_vertices: u32, edges_per_vertex: usize, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2);
    assert!(edges_per_vertex >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Endpoint pool: every time a vertex gains an edge it is pushed once, so
    // sampling the pool uniformly is degree-proportional sampling.
    let mut pool: Vec<VertexId> = vec![0, 1];
    edges.push((1, 0));
    for v in 2..num_vertices {
        for _ in 0..edges_per_vertex {
            let target = pool[rng.gen_range(0..pool.len())];
            if target != v {
                edges.push((v, target));
                pool.push(target);
                pool.push(v);
            }
        }
    }
    EdgeList {
        num_vertices,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_random_has_requested_size_and_no_self_loops() {
        let g = uniform_random(100, 1000, 7);
        assert_eq!(g.edges.len(), 1000);
        assert!(g.edges.iter().all(|&(s, d)| s != d));
        assert!(g.edges.iter().all(|&(s, d)| s < 100 && d < 100));
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        assert_eq!(uniform_random(50, 200, 1), uniform_random(50, 200, 1));
        assert_ne!(uniform_random(50, 200, 1), uniform_random(50, 200, 2));
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let g = preferential_attachment(2000, 4, 11);
        assert!(g.edges.len() > 2000);
        let mut in_degree: HashMap<VertexId, usize> = HashMap::new();
        for &(_, dst) in &g.edges {
            *in_degree.entry(dst).or_default() += 1;
        }
        let max_in = *in_degree.values().max().unwrap();
        let avg_in = g.edges.len() as f64 / g.num_vertices as f64;
        assert!(
            (max_in as f64) > 8.0 * avg_in,
            "expected a heavy-tailed in-degree distribution: max {max_in}, avg {avg_in:.1}"
        );
    }

    #[test]
    fn preferential_attachment_references_valid_vertices() {
        let g = preferential_attachment(100, 2, 3);
        assert!(g.edges.iter().all(|&(s, d)| s < 100 && d < 100 && s != d));
    }
}
