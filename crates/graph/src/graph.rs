//! Dynamic CRS-style graph storage on top of the concurrent PMA (paper
//! section 6).
//!
//! All edges live in one sparse array: the edge `(src, dst)` is stored under
//! the 64-bit key `src << 32 | dst`, so the out-edges of a vertex are
//! contiguous in key order — exactly the property the CRS format relies on for
//! `O(1)`-style navigation — while remaining efficiently updatable. Neighbour
//! enumeration is a range scan over the vertex's key interval and inherits the
//! PMA's sequential-scan performance; edge insertions and deletions are
//! ordinary PMA updates protected by the gates of the underlying array.
//!
//! The vertex set is kept in a separate structure (a read-write-locked ordered
//! set), mirroring the paper's suggestion of a dense array or hash table for
//! `V` next to the sparse array for `E`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use pma_common::{Key, PmaError, Value};
use pma_core::{ConcurrentPma, PmaParams};

/// Vertex identifier (the paper stores 32-bit vertex ids inside 64-bit edge
/// keys).
pub type VertexId = u32;

/// Edge weight / payload.
pub type Weight = Value;

/// Packs an edge into its PMA key: source in the upper 32 bits, destination in
/// the lower 32 bits. Keys are non-negative, so numeric order equals
/// (src, dst) lexicographic order.
#[inline]
pub fn edge_key(src: VertexId, dst: VertexId) -> Key {
    ((src as i64) << 32) | dst as i64
}

/// Inverse of [`edge_key`].
#[inline]
pub fn unpack_edge(key: Key) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, (key & 0xFFFF_FFFF) as VertexId)
}

/// A directed graph with dynamic, concurrent edge updates backed by a
/// concurrent Packed Memory Array.
///
/// # Examples
/// ```
/// use pma_graph::DynamicGraph;
///
/// let g = DynamicGraph::new();
/// g.add_edge(1, 2, 10).unwrap();
/// g.add_edge(1, 3, 20).unwrap();
/// g.add_edge(2, 3, 30).unwrap();
/// assert_eq!(g.out_degree(1), 2);
/// assert_eq!(g.neighbours(1), vec![(2, 10), (3, 20)]);
/// ```
pub struct DynamicGraph {
    edges: ConcurrentPma,
    vertices: RwLock<BTreeSet<VertexId>>,
    /// Monotonic operation counter used by tests and the example binaries to
    /// report progress.
    update_ops: AtomicU64,
}

impl std::fmt::Debug for DynamicGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicGraph")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl Default for DynamicGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicGraph {
    /// Creates an empty graph with the paper's default PMA configuration.
    pub fn new() -> Self {
        Self::with_params(PmaParams::default()).expect("default parameters are valid")
    }

    /// Creates an empty graph with a custom PMA configuration.
    pub fn with_params(params: PmaParams) -> Result<Self, PmaError> {
        Ok(Self {
            edges: ConcurrentPma::new(params)?,
            vertices: RwLock::new(BTreeSet::new()),
            update_ops: AtomicU64::new(0),
        })
    }

    /// Builds a graph pre-populated with `edges` (`(src, dst, weight)`; later
    /// duplicates of the same `(src, dst)` win), in any order.
    ///
    /// This is the CSR-style cold load of the paper's section 6 scenario:
    /// real edge lists arrive as files, not as point updates. The edges are
    /// sorted by their packed `(src, dst)` key and handed to the PMA's
    /// bulk-load constructor, which presizes the sparse array and lays the
    /// adjacency data out in one pass — zero rebalances, versus one
    /// rebalance cascade per `add_edge` when trickling the list in.
    pub fn from_edges(
        params: PmaParams,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<Self, PmaError> {
        let mut items: Vec<(Key, Value)> = edges
            .iter()
            .map(|&(src, dst, w)| (edge_key(src, dst), w))
            .collect();
        // Stable sort keeps the relative order of duplicate (src, dst)
        // entries, so the bulk loader's last-wins rule matches `add_edge`
        // upsert order.
        items.sort_by_key(|&(k, _)| k);
        let vertices: BTreeSet<VertexId> =
            edges.iter().flat_map(|&(src, dst, _)| [src, dst]).collect();
        Ok(Self {
            edges: ConcurrentPma::from_sorted(params, &items)?,
            vertices: RwLock::new(vertices),
            update_ops: AtomicU64::new(0),
        })
    }

    /// Adds a vertex; returns `false` if it already existed.
    pub fn add_vertex(&self, v: VertexId) -> bool {
        self.vertices.write().insert(v)
    }

    /// Whether the vertex exists.
    pub fn has_vertex(&self, v: VertexId) -> bool {
        self.vertices.read().contains(&v)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.read().len()
    }

    /// All vertices in ascending id order.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.vertices.read().iter().copied().collect()
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total updates (edge insertions/removals) issued so far.
    pub fn update_ops(&self) -> u64 {
        self.update_ops.load(Ordering::Relaxed)
    }

    /// Inserts (or updates) the directed edge `src -> dst`. Both endpoints are
    /// added to the vertex set if missing.
    pub fn add_edge(&self, src: VertexId, dst: VertexId, weight: Weight) -> Result<(), PmaError> {
        {
            let mut vs = self.vertices.write();
            vs.insert(src);
            vs.insert(dst);
        }
        self.edges.insert(edge_key(src, dst), weight);
        self.update_ops.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Removes the edge `src -> dst`, returning its weight if it existed.
    /// The endpoints stay in the vertex set.
    pub fn remove_edge(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.update_ops.fetch_add(1, Ordering::Relaxed);
        self.edges.remove(edge_key(src, dst))
    }

    /// Weight of the edge `src -> dst`, if present.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.edges.get(edge_key(src, dst))
    }

    /// Whether the edge `src -> dst` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Visits every out-neighbour of `v` in ascending destination order.
    pub fn for_each_neighbour(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        let lo = edge_key(v, 0);
        let hi = edge_key(v, VertexId::MAX);
        self.edges.range(lo, hi, &mut |key, weight| {
            let (_, dst) = unpack_edge(key);
            f(dst, weight);
        });
    }

    /// Out-neighbours of `v` with their weights, in ascending id order.
    pub fn neighbours(&self, v: VertexId) -> Vec<(VertexId, Weight)> {
        let mut out = Vec::new();
        self.for_each_neighbour(v, &mut |dst, w| out.push((dst, w)));
        out
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let mut n = 0usize;
        self.for_each_neighbour(v, &mut |_, _| n += 1);
        n
    }

    /// Visits every edge of the graph in `(src, dst)` order.
    pub fn for_each_edge(&self, f: &mut dyn FnMut(VertexId, VertexId, Weight)) {
        self.edges.range(0, Key::MAX, &mut |key, weight| {
            let (src, dst) = unpack_edge(key);
            f(src, dst, weight);
        });
    }

    /// Waits until every pending asynchronous edge update has been applied
    /// (relevant for the PMA's asynchronous update modes).
    pub fn flush(&self) {
        self.edges.flush();
    }

    /// Statistics of the underlying sparse array (rebalances, resizes, ...).
    pub fn storage_stats(&self) -> pma_core::StatsSnapshot {
        self.edges.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn edge_key_roundtrip_and_ordering() {
        assert_eq!(unpack_edge(edge_key(0, 0)), (0, 0));
        assert_eq!(unpack_edge(edge_key(7, 42)), (7, 42));
        assert_eq!(
            unpack_edge(edge_key(VertexId::MAX, VertexId::MAX)),
            (VertexId::MAX, VertexId::MAX)
        );
        // (src, dst) lexicographic order equals key order.
        assert!(edge_key(1, 99) < edge_key(2, 0));
        assert!(edge_key(2, 0) < edge_key(2, 1));
        assert!(edge_key(0, 0) >= 0, "edge keys are non-negative");
    }

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_vertex(1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.neighbours(1), vec![]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn add_and_remove_edges() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        g.add_edge(1, 2, 10).unwrap();
        g.add_edge(1, 3, 20).unwrap();
        g.add_edge(2, 1, 30).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(1, 2), Some(10));
        assert_eq!(g.neighbours(1), vec![(2, 10), (3, 20)]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.remove_edge(1, 2), Some(10));
        assert_eq!(g.remove_edge(1, 2), None);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbours(1), vec![(3, 20)]);
        // Vertices survive edge removal.
        assert!(g.has_vertex(2));
    }

    #[test]
    fn updating_an_edge_overwrites_weight() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        g.add_edge(5, 6, 1).unwrap();
        g.add_edge(5, 6, 2).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(5, 6), Some(2));
    }

    #[test]
    fn neighbours_are_contiguous_and_ordered_with_many_vertices() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        // Interleave edge insertions across sources so the PMA must keep
        // per-source runs sorted while rebalancing.
        for dst in 0..200u32 {
            for src in 0..10u32 {
                g.add_edge(src, dst * 7 % 200, (src as i64) * 1000 + dst as i64)
                    .unwrap();
            }
        }
        // The default update mode is asynchronous: settle the combining
        // queues before validating the adjacency lists.
        g.flush();
        for src in 0..10u32 {
            let neigh = g.neighbours(src);
            assert_eq!(neigh.len(), 200, "source {src}");
            assert!(neigh.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(g.num_edges(), 2000);
    }

    #[test]
    fn from_edges_bulk_loads_without_rebalances() {
        // An unordered edge list with a duplicate (the later weight wins).
        let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        for src in (0..50u32).rev() {
            for dst in 0..40u32 {
                edges.push((src, (dst * 7) % 40, (src as i64) * 100 + dst as i64));
            }
        }
        edges.push((0, 0, -999));
        let g = DynamicGraph::from_edges(PmaParams::small(), &edges).unwrap();
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 50 * 40);
        assert_eq!(g.edge_weight(0, 0), Some(-999), "later duplicate must win");
        assert_eq!(
            g.storage_stats().total_rebalances(),
            0,
            "bulk load must not rebalance"
        );
        for src in 0..50u32 {
            let neigh = g.neighbours(src);
            assert_eq!(neigh.len(), 40, "source {src}");
            assert!(neigh.windows(2).all(|w| w[0].0 < w[1].0));
        }
        // The loaded graph keeps accepting updates.
        g.add_edge(100, 3, 1).unwrap();
        assert_eq!(g.remove_edge(0, 0), Some(-999));
        g.flush();
        assert_eq!(g.num_edges(), 50 * 40);
        let empty = DynamicGraph::from_edges(PmaParams::small(), &[]).unwrap();
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn for_each_edge_visits_in_src_dst_order() {
        let g = DynamicGraph::with_params(PmaParams::small()).unwrap();
        g.add_edge(3, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(2, 9, 1).unwrap();
        g.add_edge(1, 1, 1).unwrap();
        let mut edges = Vec::new();
        g.for_each_edge(&mut |s, d, _| edges.push((s, d)));
        assert_eq!(edges, vec![(1, 1), (1, 2), (2, 9), (3, 1)]);
    }

    #[test]
    fn concurrent_edge_insertions() {
        let g = Arc::new(DynamicGraph::with_params(PmaParams::small()).unwrap());
        let mut handles = Vec::new();
        for tid in 0..8u32 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    g.add_edge(tid, i, i as i64).unwrap();
                }
            }));
        }
        let reader = {
            let g = g.clone();
            std::thread::spawn(move || {
                let mut sum = 0usize;
                for _ in 0..50 {
                    sum += g.out_degree(0);
                }
                sum
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let _ = reader.join().unwrap();
        g.flush();
        assert_eq!(g.num_edges(), 8 * 1000);
        for tid in 0..8u32 {
            assert_eq!(g.out_degree(tid), 1000, "vertex {tid}");
        }
    }
}
