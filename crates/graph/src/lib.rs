//! Dynamic graph storage on Packed Memory Arrays (paper section 6).
//!
//! The CRS (compressed row storage) format keeps a graph navigable in `O(1)`
//! but is read-only; this crate replaces its dense edge array with the
//! concurrent PMA so the graph supports concurrent edge insertions, deletions
//! and analytical scans at the same time.
//!
//! * [`graph::DynamicGraph`] — edges keyed by `(src, dst)` in one sparse
//!   array, vertex set alongside; [`graph::DynamicGraph::from_edges`] bulk
//!   -loads a whole edge list through the PMA's presized `from_sorted`
//!   constructor (zero rebalances during the load).
//! * [`algorithms`] — BFS, PageRank and triangle counting over the dynamic
//!   graph.
//! * [`generators`] — synthetic uniform and scale-free edge streams used by
//!   the examples and benches.

#![warn(missing_docs)]

pub mod algorithms;
pub mod generators;
pub mod graph;

pub use algorithms::{bfs, directed_triangles, pagerank};
pub use generators::{preferential_attachment, uniform_random, EdgeList};
pub use graph::{edge_key, unpack_edge, DynamicGraph, VertexId, Weight};
