//! Timestamps for trace events: the x86 time-stamp counter when available,
//! calibrated against [`Instant`] once at startup, with a portable
//! [`Instant`]-based fallback elsewhere.
//!
//! Hot paths record *raw* ticks only (one `rdtsc`, ~20 cycles); conversion to
//! nanoseconds happens at drain/export time through [`Clock::raw_to_ns`].

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// How raw timestamps are produced and converted.
enum Mode {
    /// `rdtsc` ticks; `ticks_per_ns` measured against `Instant` at startup.
    #[cfg(target_arch = "x86_64")]
    Tsc {
        /// Calibrated tick rate (typically ~1–4 ticks/ns).
        ticks_per_ns: f64,
        /// TSC value at calibration start; raw readings are relative to it.
        base_raw: u64,
    },
    /// Monotonic wall clock: raw readings are already nanoseconds.
    Wall,
}

/// A calibrated monotonic clock shared by every tracing thread.
pub struct Clock {
    base_instant: Instant,
    mode: Mode,
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn read_tsc() -> u64 {
    // SAFETY: `rdtsc` has no preconditions; it only reads a counter register.
    unsafe { core::arch::x86_64::_rdtsc() }
}

impl Clock {
    /// The process-wide clock, calibrated on first use (a ~2 ms spin, paid
    /// once and only when tracing actually records an event or a trace is
    /// exported — never on the disabled path).
    pub fn global() -> &'static Clock {
        static CLOCK: OnceLock<Clock> = OnceLock::new();
        CLOCK.get_or_init(Clock::calibrate)
    }

    fn calibrate() -> Clock {
        let base_instant = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            let base_raw = read_tsc();
            while base_instant.elapsed() < Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            let ticks = read_tsc().saturating_sub(base_raw);
            let elapsed_ns = base_instant.elapsed().as_nanos() as f64;
            if ticks > 0 && elapsed_ns > 0.0 {
                return Clock {
                    base_instant,
                    mode: Mode::Tsc {
                        ticks_per_ns: ticks as f64 / elapsed_ns,
                        base_raw,
                    },
                };
            }
        }
        Clock {
            base_instant,
            mode: Mode::Wall,
        }
    }

    /// A raw timestamp: TSC ticks on x86-64, elapsed nanoseconds elsewhere.
    /// Monotonic per thread and comparable across threads (invariant TSC).
    #[inline]
    pub fn raw_now(&self) -> u64 {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            Mode::Tsc { .. } => read_tsc(),
            Mode::Wall => self.base_instant.elapsed().as_nanos() as u64,
        }
    }

    /// Converts a raw timestamp to nanoseconds since clock creation.
    pub fn raw_to_ns(&self, raw: u64) -> u64 {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            Mode::Tsc {
                ticks_per_ns,
                base_raw,
            } => (raw.saturating_sub(base_raw) as f64 / ticks_per_ns) as u64,
            Mode::Wall => raw,
        }
    }

    /// Converts a raw *duration* (difference of two raw timestamps) to
    /// nanoseconds.
    pub fn raw_delta_to_ns(&self, delta: u64) -> u64 {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            Mode::Tsc { ticks_per_ns, .. } => (delta as f64 / ticks_per_ns) as u64,
            Mode::Wall => delta,
        }
    }

    /// Human-readable description of the timestamp source ("tsc" or
    /// "instant"), for trace metadata.
    pub fn source(&self) -> &'static str {
        match self.mode {
            #[cfg(target_arch = "x86_64")]
            Mode::Tsc { .. } => "tsc",
            Mode::Wall => "instant",
        }
    }
}

/// Raw timestamp from the global clock.
#[inline]
pub fn raw_now() -> u64 {
    Clock::global().raw_now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_timestamps_are_monotone_and_calibrated() {
        let clock = Clock::global();
        let a = clock.raw_now();
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        let b = clock.raw_now();
        assert!(b > a, "raw clock went backwards: {a} -> {b}");
        let measured_ns = clock.raw_delta_to_ns(b - a) as f64;
        let wall_ns = started.elapsed().as_nanos() as f64;
        let ratio = measured_ns / wall_ns;
        // 20 ms is long enough that calibration error dominates scheduler
        // noise; the two clocks must agree within 25%.
        assert!(
            (0.75..1.25).contains(&ratio),
            "calibration off: measured {measured_ns} ns vs wall {wall_ns} ns"
        );
    }

    #[test]
    fn raw_to_ns_is_relative_to_clock_creation() {
        let clock = Clock::global();
        let now = clock.raw_now();
        let ns = clock.raw_to_ns(now);
        // The global clock was created at most a few minutes ago in this test
        // process; an absolute-TSC bug would produce hours-to-years here.
        assert!(ns < 3_600_000_000_000, "raw_to_ns not rebased: {ns}");
        assert!(!clock.source().is_empty());
    }
}
