//! Unified observability layer for the PMA stack: lock-free event tracing,
//! a metrics registry and phase-level profiling spans.
//!
//! Like `pma_common::simd`, this crate is hand-rolled on `std` alone — no
//! crates.io dependencies — so it can sit *below* every other crate in the
//! workspace (including `pma-common`) and be reached from the hottest paths
//! without dependency cycles.
//!
//! Three layers:
//!
//! 1. [`trace`] — per-thread lock-free ring buffers of fixed-size binary
//!    events behind a branch-predictable global enable flag. Disabled cost is
//!    one relaxed load plus a branch (enforced by the `obs_smoke` microbench).
//!    A drain API merges the rings and exports Chrome `trace_event` JSON that
//!    opens in `chrome://tracing` / Perfetto.
//! 2. [`metrics`] — named counters/gauges/histograms behind the
//!    [`metrics::Observe`]/[`metrics::MetricSource`] traits, a registry of
//!    weakly-held sources, an interval sampler producing time-series buffers,
//!    and Prometheus-style text / JSON exposition.
//! 3. Profiling spans — [`trace::span`] RAII timers used by the rebalancer
//!    (claim/settle/install/release), the incremental split machinery (fence,
//!    chase rounds, closing fold), resize publication, epoch reclamation and
//!    `frozen()` capture.
//!
//! Capture a trace from any example or bench:
//!
//! ```text
//! PMA_TRACE=1 cargo run --release --example mixed_workload
//! # -> trace.json, load it at https://ui.perfetto.dev
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use metrics::{MetricSource, MetricsRegistry, MetricsSeries, Observations, Observe};
pub use trace::{span, Category, Span, TraceEvent};
