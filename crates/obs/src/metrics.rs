//! The metrics registry: named counters, gauges and histograms collected
//! from [`MetricSource`]s through the [`Observe`] sink trait, an interval
//! sampler producing time-series buffers, and Prometheus-style text / JSON
//! exposition.
//!
//! Sources are held weakly, so a structure that registers itself (or its
//! stats block) needs no unregistration: dropping the structure silently
//! removes it from future snapshots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Values, sinks and sources
// ---------------------------------------------------------------------------

/// A point-in-time histogram: `(upper_bound, count)` per bucket plus the
/// total sample count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket `(inclusive upper bound, samples in bucket)` pairs.
    pub buckets: Vec<(u64, u64)>,
    /// Total samples across all buckets.
    pub count: u64,
}

/// The value of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Instantaneous level (queue depth, epoch lag, ...).
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The value as a float: counters and gauges directly, histograms by
    /// total count.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.count as f64,
        }
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Full (prefixed) metric name.
    pub name: String,
    /// Current value.
    pub value: MetricValue,
}

/// The sink side: where a [`MetricSource`] writes its metrics during
/// collection.
pub trait Observe {
    /// Records a monotonic counter.
    fn counter(&mut self, name: &str, value: u64);
    /// Records an instantaneous gauge.
    fn gauge(&mut self, name: &str, value: f64);
    /// Records a bucketed distribution as `(upper_bound, count)` pairs.
    fn histogram(&mut self, name: &str, buckets: &[(u64, u64)], count: u64);
}

/// The provider side: anything that can dump its current metrics into an
/// [`Observe`] sink. Implemented by the stats blocks of the PMA stack
/// (`CombiningStats`, `MaintenanceStats`, engine stats, latency histograms).
pub trait MetricSource: Send + Sync {
    /// Writes every metric this source knows about into `out`.
    fn observe(&self, out: &mut dyn Observe);
}

/// A buffering [`Observe`] implementation that collects metrics into a
/// [`MetricsSnapshot`], prefixing every name.
#[derive(Debug, Default)]
pub struct Observations {
    prefix: String,
    metrics: Vec<Metric>,
}

impl Observations {
    /// An empty collection with no name prefix.
    pub fn new() -> Observations {
        Observations::default()
    }

    /// An empty collection prefixing every metric name with `prefix_`.
    pub fn with_prefix(prefix: &str) -> Observations {
        Observations {
            prefix: prefix.to_string(),
            metrics: Vec::new(),
        }
    }

    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}_{name}", self.prefix)
        }
    }

    /// The collected metrics as a snapshot.
    pub fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics,
        }
    }
}

impl Observe for Observations {
    fn counter(&mut self, name: &str, value: u64) {
        let name = self.full_name(name);
        self.metrics.push(Metric {
            name,
            value: MetricValue::Counter(value),
        });
    }

    fn gauge(&mut self, name: &str, value: f64) {
        let name = self.full_name(name);
        self.metrics.push(Metric {
            name,
            value: MetricValue::Gauge(value),
        });
    }

    fn histogram(&mut self, name: &str, buckets: &[(u64, u64)], count: u64) {
        let name = self.full_name(name);
        self.metrics.push(Metric {
            name,
            value: MetricValue::Histogram(HistogramSnapshot {
                buckets: buckets.to_vec(),
                count,
            }),
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time collection of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The metrics, in collection order.
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// A metric's value as a float (counter, gauge, or histogram count).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.get(name).map(MetricValue::as_f64)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct SourceEntry {
    prefix: String,
    source: Weak<dyn MetricSource>,
}

/// A registry of weakly-held [`MetricSource`]s, snapshotted on demand (or on
/// an interval by [`sample_registry`]).
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<SourceEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry used by long-lived structures and the
    /// exposition endpoints.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Registers `source` under `prefix` (every metric it emits is renamed
    /// `prefix_<name>`). The registry holds only a weak reference.
    pub fn register<S: MetricSource + 'static>(&self, prefix: &str, source: &Arc<S>) {
        let weak: Weak<dyn MetricSource> = Arc::downgrade(source) as Weak<dyn MetricSource>;
        self.sources.lock().unwrap().push(SourceEntry {
            prefix: prefix.to_string(),
            source: weak,
        });
    }

    /// Number of still-live registered sources (pruning dead ones).
    pub fn len(&self) -> usize {
        let mut sources = self.sources.lock().unwrap();
        sources.retain(|e| e.source.strong_count() > 0);
        sources.len()
    }

    /// Whether no live source is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects every live source into a snapshot, pruning dropped ones.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut collected = Vec::new();
        let mut sources = self.sources.lock().unwrap();
        sources.retain(|entry| match entry.source.upgrade() {
            Some(source) => {
                let mut obs = Observations::with_prefix(&entry.prefix);
                source.observe(&mut obs);
                collected.extend(obs.metrics);
                true
            }
            None => false,
        });
        MetricsSnapshot { metrics: collected }
    }
}

// ---------------------------------------------------------------------------
// Time series and sampler
// ---------------------------------------------------------------------------

/// One sampled snapshot with its offset from the start of sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Milliseconds since sampling began.
    pub elapsed_ms: u64,
    /// The metrics at that instant.
    pub snapshot: MetricsSnapshot,
}

/// A time-ordered buffer of sampled snapshots — what the drivers attach to a
/// measurement so a run's internal behaviour is visible over time, not just
/// as end-of-run totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSeries {
    /// The sampled points, oldest first.
    pub points: Vec<SeriesPoint>,
}

impl MetricsSeries {
    /// An empty series.
    pub fn new() -> MetricsSeries {
        MetricsSeries::default()
    }

    /// Appends a sampled snapshot.
    pub fn push(&mut self, elapsed_ms: u64, snapshot: MetricsSnapshot) {
        self.points.push(SeriesPoint {
            elapsed_ms,
            snapshot,
        });
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The newest snapshot.
    pub fn last(&self) -> Option<&MetricsSnapshot> {
        self.points.last().map(|p| &p.snapshot)
    }

    /// The `q`-quantile (0..=1) of a metric's value across the series —
    /// e.g. `percentile("queue_depth", 0.99)` for a p99 of sampled depths.
    pub fn percentile(&self, name: &str, q: f64) -> Option<f64> {
        let mut values: Vec<f64> = self
            .points
            .iter()
            .filter_map(|p| p.snapshot.value(name))
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(values[rank])
    }

    /// The maximum of a metric's value across the series.
    pub fn max_value(&self, name: &str) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| p.snapshot.value(name))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Handle to a background sampler thread started by [`sample_registry`].
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<MetricsSeries>,
}

impl SamplerHandle {
    /// Stops the sampler and returns the collected series (always including
    /// one final snapshot taken at stop time).
    pub fn stop(self) -> MetricsSeries {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().unwrap_or_default()
    }
}

/// Spawns a thread snapshotting `registry` every `interval` into a
/// [`MetricsSeries`] until [`SamplerHandle::stop`] is called.
pub fn sample_registry(registry: &'static MetricsRegistry, interval: Duration) -> SamplerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let started = Instant::now();
        let mut series = MetricsSeries::new();
        loop {
            series.push(started.elapsed().as_millis() as u64, registry.snapshot());
            if stop_flag.load(Ordering::Relaxed) {
                return series;
            }
            // Sleep in short slices so stop() returns promptly.
            let deadline = Instant::now() + interval;
            while Instant::now() < deadline {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2).min(interval));
            }
        }
    });
    SamplerHandle { stop, thread }
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format (`# TYPE`
/// lines, `name value` samples, cumulative `_bucket{le=...}` histograms).
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for metric in &snapshot.metrics {
        let name = sanitize(&metric.name);
        match &metric.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", format_f64(*v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (bound, count) in &h.buckets {
                    cumulative += count;
                    out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Renders a snapshot as a flat JSON object `{"name": value, ...}`
/// (histograms contribute `<name>_count`).
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    for (i, metric) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = sanitize(&metric.name);
        match &metric.value {
            MetricValue::Counter(v) => out.push_str(&format!("\"{name}\":{v}")),
            MetricValue::Gauge(v) => out.push_str(&format!("\"{name}\":{}", format_f64(*v))),
            MetricValue::Histogram(h) => {
                out.push_str(&format!("\"{name}_count\":{}", h.count));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Validates Prometheus-style exposition text: every non-comment line is
/// `name[{labels}] value` with a parseable value. Returns the sample count.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let bare_name = name_part.split('{').next().unwrap_or("");
        if bare_name.is_empty()
            || !bare_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!(
                "line {}: bad metric name: {name_part:?}",
                lineno + 1
            ));
        }
        value_part
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value: {value_part:?}", lineno + 1))?;
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSource;

    impl MetricSource for FixedSource {
        fn observe(&self, out: &mut dyn Observe) {
            out.counter("ops", 42);
            out.gauge("depth", 3.5);
            out.histogram("lat", &[(1, 2), (2, 3)], 5);
        }
    }

    #[test]
    fn observations_prefix_names() {
        let mut obs = Observations::with_prefix("pma");
        FixedSource.observe(&mut obs);
        let snap = obs.into_snapshot();
        assert_eq!(snap.counter("pma_ops"), Some(42));
        assert_eq!(snap.value("pma_depth"), Some(3.5));
        assert_eq!(snap.value("pma_lat"), Some(5.0));
        assert_eq!(snap.get("ops"), None);
    }

    #[test]
    fn registry_holds_sources_weakly() {
        let registry = MetricsRegistry::new();
        let source = Arc::new(FixedSource);
        registry.register("a", &source);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.snapshot().counter("a_ops"), Some(42));
        drop(source);
        assert!(registry.is_empty());
        assert!(registry.snapshot().metrics.is_empty());
    }

    #[test]
    fn series_percentile_and_max() {
        let mut series = MetricsSeries::new();
        for (t, depth) in [(0u64, 1.0), (10, 9.0), (20, 5.0), (30, 2.0)] {
            let mut obs = Observations::new();
            obs.gauge("depth", depth);
            series.push(t, obs.into_snapshot());
        }
        assert_eq!(series.len(), 4);
        assert_eq!(series.percentile("depth", 1.0), Some(9.0));
        assert_eq!(series.percentile("depth", 0.0), Some(1.0));
        assert_eq!(series.max_value("depth"), Some(9.0));
        assert_eq!(series.percentile("missing", 0.5), None);
    }

    #[test]
    fn sampler_collects_points() {
        // A leaked registry satisfies the `'static` bound of
        // `sample_registry` without touching the global one.
        let registry: &'static MetricsRegistry = Box::leak(Box::new(MetricsRegistry::new()));
        let source = Arc::new(FixedSource);
        registry.register("s", &source);
        let handle = sample_registry(registry, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(25));
        let series = handle.stop();
        assert!(!series.is_empty());
        assert_eq!(series.last().unwrap().counter("s_ops"), Some(42));
    }

    #[test]
    fn prometheus_exposition_validates() {
        let mut obs = Observations::with_prefix("pma");
        FixedSource.observe(&mut obs);
        let snap = obs.into_snapshot();
        let text = render_prometheus(&snap);
        let samples = validate_exposition(&text).unwrap();
        // counter + gauge + 2 buckets + +Inf bucket + count = 6 samples.
        assert_eq!(samples, 6);
        assert!(text.contains("# TYPE pma_ops counter"));
        assert!(text.contains("pma_lat_bucket{le=\"+Inf\"} 5"));
        assert!(validate_exposition("bad line with spaces but no number x").is_err());
    }

    #[test]
    fn json_exposition_is_flat() {
        let mut obs = Observations::new();
        FixedSource.observe(&mut obs);
        let json = render_json(&obs.into_snapshot());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"ops\":42"));
        assert!(json.contains("\"lat_count\":5"));
    }
}
