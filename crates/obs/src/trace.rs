//! Lock-free event tracing: per-thread ring buffers of fixed-size binary
//! events behind a branch-predictable global enable flag, drained and merged
//! into Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
//!
//! Emission is wait-free for the owning thread: each thread writes to its own
//! ring (registered globally so drains can reach it), every slot is guarded by
//! a seqlock word so a concurrent drain never observes a torn event, and the
//! ring overwrites its oldest entries once full. When tracing is disabled the
//! entire layer costs one relaxed atomic load and a predictable branch per
//! call site — verified by the `obs_smoke` microbench.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{self, Clock};

// ---------------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------------

/// What a trace event describes. Every category maps to a named track slice
/// in the exported Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Category {
    /// A writer blocked waiting for exclusive admission to a gate
    /// (payload: gate id).
    GateWait = 0,
    /// Rebalancer claim phase: acquiring the gates of a window
    /// (payload: first gate id).
    RebalanceClaim = 1,
    /// Rebalancer settle phase: draining queued ops of the claimed window
    /// (payload: ops settled).
    RebalanceSettle = 2,
    /// Rebalancer install phase: publishing rewritten chunks back into the
    /// window's gates (payload: gates in window).
    RebalanceInstall = 3,
    /// Rebalancer release phase: reopening the window's gates
    /// (payload: gates released).
    RebalanceRelease = 4,
    /// A whole redistribute window, claim to release
    /// (payload: gates in window).
    Redistribute = 5,
    /// A full resize: rebuild plus publication (payload: new gate count).
    Resize = 6,
    /// The publication step of a resize: instance swap plus retirement
    /// (payload: new gate count).
    ResizePublish = 7,
    /// An incremental-split fence: installing or uninstalling a delta log
    /// (payload: shard index).
    SplitFence = 8,
    /// One chase round of an incremental split (payload: ops chased).
    ChaseRound = 9,
    /// The closing fold of an incremental split: final capped round plus
    /// fold-in under the fence (payload: ops folded).
    ClosingFold = 10,
    /// A `frozen()` snapshot capture (payload: pinned generation).
    FrozenCapture = 11,
    /// Epoch-protected garbage reclamation (payload: instances reclaimed).
    EpochReclaim = 12,
    /// Combining-queue depth sample (instant; payload: queued ops).
    QueueDepth = 13,
    /// A shard merge in the sharded engine (payload: surviving shard index).
    ShardMerge = 14,
    /// An op shipped to a core-affine worker: enqueue plus, for sync ops,
    /// the completion wait (payload: worker index).
    OpShip = 15,
    /// One ingress-queue drain run of a core-affine worker
    /// (payload: ops drained).
    IngressDrain = 16,
}

impl Category {
    /// Every category, in discriminant order (index = discriminant).
    pub const ALL: &'static [Category] = &[
        Category::GateWait,
        Category::RebalanceClaim,
        Category::RebalanceSettle,
        Category::RebalanceInstall,
        Category::RebalanceRelease,
        Category::Redistribute,
        Category::Resize,
        Category::ResizePublish,
        Category::SplitFence,
        Category::ChaseRound,
        Category::ClosingFold,
        Category::FrozenCapture,
        Category::EpochReclaim,
        Category::QueueDepth,
        Category::ShardMerge,
        Category::OpShip,
        Category::IngressDrain,
    ];

    /// Stable display name used in the exported trace.
    pub fn name(self) -> &'static str {
        match self {
            Category::GateWait => "gate wait",
            Category::RebalanceClaim => "rebalance claim",
            Category::RebalanceSettle => "rebalance settle",
            Category::RebalanceInstall => "rebalance install",
            Category::RebalanceRelease => "rebalance release",
            Category::Redistribute => "redistribute window",
            Category::Resize => "resize",
            Category::ResizePublish => "resize publication",
            Category::SplitFence => "split fence",
            Category::ChaseRound => "chase round",
            Category::ClosingFold => "closing fold",
            Category::FrozenCapture => "frozen capture",
            Category::EpochReclaim => "epoch reclaim",
            Category::QueueDepth => "queue depth",
            Category::ShardMerge => "shard merge",
            Category::OpShip => "op ship",
            Category::IngressDrain => "ingress drain",
        }
    }

    /// Inverse of the `repr(u16)` discriminant, for decoding ring slots.
    pub fn from_u16(value: u16) -> Option<Category> {
        Category::ALL.get(value as usize).copied()
    }
}

// ---------------------------------------------------------------------------
// Events and rings
// ---------------------------------------------------------------------------

/// One fixed-size binary trace event. Timestamps are *raw* clock readings
/// (TSC ticks or nanoseconds, see [`crate::clock`]); durations of 0 mark
/// instant events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Raw start timestamp.
    pub start_raw: u64,
    /// Raw duration (0 for instant events).
    pub dur_raw: u64,
    /// Event category.
    pub cat: Category,
    /// Small id of the emitting thread (assigned at ring registration).
    pub tid: u32,
    /// Category-specific payload (gate id, ops settled, generation, ...).
    pub payload: u64,
}

/// One ring slot: a seqlock word plus the four event words. The sequence for
/// global index `i` is `2*i + 1` while the owner writes and `2*i + 2` once
/// complete, so a reader can tell exactly which logical event (if any) a slot
/// coherently holds.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A single-producer ring buffer of trace events. The owning thread pushes;
/// any thread may drain concurrently (each event is delivered at most once).
/// Once full, new events overwrite the oldest.
pub struct EventRing {
    mask: u64,
    /// Total events ever pushed (the next global index).
    head: AtomicU64,
    /// Global index below which events have already been drained.
    floor: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two();
        EventRing {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (including ones already overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends an event. Must only be called by the ring's owning thread
    /// (single producer); concurrent [`EventRing::drain`] calls are safe.
    pub fn push(&self, event: &TraceEvent) {
        let index = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(index & self.mask) as usize];
        // Seqlock write protocol: odd sequence while the words are in flux.
        slot.seq.store(2 * index + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.words[0].store(event.start_raw, Ordering::Relaxed);
        slot.words[1].store(event.dur_raw, Ordering::Relaxed);
        slot.words[2].store(
            (u64::from(event.cat as u16) << 32) | u64::from(event.tid),
            Ordering::Relaxed,
        );
        slot.words[3].store(event.payload, Ordering::Relaxed);
        slot.seq.store(2 * index + 2, Ordering::Release);
        self.head.store(index + 1, Ordering::Release);
    }

    /// Drains every event not yet delivered by a previous drain, oldest
    /// first. Events overwritten before being drained are lost (overwrite
    /// semantics); events whose slot is concurrently being rewritten are
    /// skipped rather than returned torn.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        // Claim [floor, head); concurrent drains each get disjoint ranges.
        let claimed = self.floor.swap(head, Ordering::AcqRel);
        let lo = claimed.max(head.saturating_sub(self.slots.len() as u64));
        let mut out = Vec::with_capacity((head - lo) as usize);
        for index in lo..head {
            let slot = &self.slots[(index & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * index + 2 {
                // In-progress write or already overwritten by a newer event.
                continue;
            }
            let words = [
                slot.words[0].load(Ordering::Relaxed),
                slot.words[1].load(Ordering::Relaxed),
                slot.words[2].load(Ordering::Relaxed),
                slot.words[3].load(Ordering::Relaxed),
            ];
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue;
            }
            let Some(cat) = Category::from_u16((words[2] >> 32) as u16) else {
                continue;
            };
            out.push(TraceEvent {
                start_raw: words[0],
                dur_raw: words[1],
                cat,
                tid: words[2] as u32,
                payload: words[3],
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Global enable flag and per-thread registration
// ---------------------------------------------------------------------------

const FLAG_UNINIT: u8 = 0;
const FLAG_OFF: u8 = 1;
const FLAG_ON: u8 = 2;

/// Tri-state so the very first call can consult `PMA_TRACE` without putting
/// an environment read on the steady-state path.
static ENABLED: AtomicU8 = AtomicU8::new(FLAG_UNINIT);

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var("PMA_TRACE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    ENABLED.store(if on { FLAG_ON } else { FLAG_OFF }, Ordering::Relaxed);
    on
}

/// Whether tracing is on. The steady-state cost is one relaxed load and a
/// branch; the first call resolves the `PMA_TRACE` environment variable.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        FLAG_ON => true,
        FLAG_OFF => false,
        _ => init_enabled(),
    }
}

/// Turns tracing on or off programmatically (overrides `PMA_TRACE`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { FLAG_ON } else { FLAG_OFF }, Ordering::Relaxed);
}

struct Registry {
    rings: Mutex<Vec<Arc<EventRing>>>,
    next_tid: AtomicU32,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
    })
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("PMA_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8192)
    })
}

thread_local! {
    static LOCAL_RING: RefCell<Option<(u32, Arc<EventRing>)>> = const { RefCell::new(None) };
}

/// Emits a completed event into the calling thread's ring (registering the
/// ring on first use). No-op when tracing is disabled.
#[inline]
pub fn emit(cat: Category, start_raw: u64, dur_raw: u64, payload: u64) {
    if !enabled() {
        return;
    }
    emit_always(cat, start_raw, dur_raw, payload);
}

#[cold]
fn register_local_ring() -> (u32, Arc<EventRing>) {
    let ring = Arc::new(EventRing::with_capacity(ring_capacity()));
    let reg = registry();
    let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
    reg.rings.lock().unwrap().push(Arc::clone(&ring));
    (tid, ring)
}

fn emit_always(cat: Category, start_raw: u64, dur_raw: u64, payload: u64) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let (tid, ring) = slot.get_or_insert_with(register_local_ring);
        ring.push(&TraceEvent {
            start_raw,
            dur_raw,
            cat,
            tid: *tid,
            payload,
        });
    });
}

/// Emits an instant event (duration 0) stamped now.
#[inline]
pub fn instant(cat: Category, payload: u64) {
    if !enabled() {
        return;
    }
    emit_always(cat, clock::raw_now(), 0, payload);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An RAII phase timer: started by [`span`], emits one duration event when
/// dropped. When tracing is disabled the guard is inert and its drop is a
/// single predictable branch.
pub struct Span {
    start_raw: u64,
    cat: Category,
    payload: u64,
    armed: bool,
}

impl Span {
    /// Updates the payload recorded at drop (e.g. a count only known at the
    /// end of the phase).
    #[inline]
    pub fn set_payload(&mut self, payload: u64) {
        self.payload = payload;
    }

    /// Whether this span will record an event on drop.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            let end = clock::raw_now();
            emit_always(
                self.cat,
                self.start_raw,
                end.saturating_sub(self.start_raw),
                self.payload,
            );
        }
    }
}

/// Starts a phase span. Disabled cost: one relaxed load, a branch, and a
/// four-word struct the optimiser can see is inert.
#[inline]
pub fn span(cat: Category, payload: u64) -> Span {
    if enabled() {
        Span {
            start_raw: clock::raw_now(),
            cat,
            payload,
            armed: true,
        }
    } else {
        Span {
            start_raw: 0,
            cat,
            payload,
            armed: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Drain and export
// ---------------------------------------------------------------------------

/// Drains every registered ring and returns the merged events sorted by
/// start timestamp. Each event is delivered at most once across drains.
pub fn drain_all() -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = Vec::new();
    for ring in registry().rings.lock().unwrap().iter() {
        events.extend(ring.drain());
    }
    events.sort_by_key(|e| e.start_raw);
    events
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Array Format" with
/// a `traceEvents` wrapper), loadable in `chrome://tracing` and Perfetto.
/// Durations use the `X` (complete) phase; instant events use `i`.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let clock = Clock::global();
    let mut out = String::with_capacity(events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = clock.raw_to_ns(event.start_raw) as f64 / 1000.0;
        let dur_us = clock.raw_delta_to_ns(event.dur_raw) as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"pma\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},",
            event.cat.name(),
            event.tid,
        ));
        if event.dur_raw == 0 {
            out.push_str("\"ph\":\"i\",\"s\":\"t\",");
        } else {
            out.push_str(&format!("\"ph\":\"X\",\"dur\":{dur_us:.3},"));
        }
        out.push_str(&format!("\"args\":{{\"payload\":{}}}}}", event.payload));
    }
    out.push_str("]}\n");
    out
}

/// Drains all rings and writes a Chrome trace to `path`. Returns the number
/// of events written.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let events = drain_all();
    std::fs::write(path, export_chrome_trace(&events))?;
    Ok(events.len())
}

/// [`write_chrome_trace`] if tracing is enabled, `None` otherwise — the
/// one-liner examples and drivers call after a run.
pub fn write_if_enabled(path: &str) -> Option<usize> {
    if !enabled() {
        return None;
    }
    match write_chrome_trace(path) {
        Ok(n) => Some(n),
        Err(e) => {
            eprintln!("obs: cannot write trace {path}: {e}");
            None
        }
    }
}

/// Structural validation of Chrome-trace JSON produced by
/// [`export_chrome_trace`]: the wrapper object parses, brackets balance, and
/// every event object carries `name`, `ph` and `ts`. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let text = text.trim();
    if !text.starts_with('{') || !text.ends_with('}') {
        return Err("not a JSON object".into());
    }
    if !text.contains("\"traceEvents\"") {
        return Err("missing traceEvents key".into());
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut events = 0usize;
    let mut event_start = None;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                depth += 1;
                if c == '{' && depth == 3 {
                    event_start = Some(i);
                }
            }
            '}' | ']' => {
                if depth == 0 {
                    return Err(format!("unbalanced bracket at byte {i}"));
                }
                if c == '}' && depth == 3 {
                    let start = event_start.take().ok_or("brace mismatch")?;
                    let body = &text[start..=i];
                    for key in ["\"name\"", "\"ph\"", "\"ts\""] {
                        if !body.contains(key) {
                            return Err(format!("event {events} missing {key}"));
                        }
                    }
                    events += 1;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("unterminated JSON".into());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            start_raw: 100 + i,
            dur_raw: i,
            cat: Category::GateWait,
            tid: 7,
            payload: i.wrapping_mul(0x9E37_79B9),
        }
    }

    #[test]
    fn ring_roundtrips_events_in_order() {
        let ring = EventRing::with_capacity(16);
        for i in 0..10 {
            ring.push(&ev(i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 10);
        for (i, event) in drained.iter().enumerate() {
            assert_eq!(*event, ev(i as u64));
        }
        // A second drain delivers nothing: events are consumed exactly once.
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_at_wrap() {
        let ring = EventRing::with_capacity(8);
        for i in 0..20 {
            ring.push(&ev(i));
        }
        let drained = ring.drain();
        // Only the newest `capacity` events survive.
        assert_eq!(drained.len(), 8);
        for (k, event) in drained.iter().enumerate() {
            assert_eq!(*event, ev(12 + k as u64));
        }
    }

    #[test]
    fn drain_after_partial_drain_resumes_at_floor() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5 {
            ring.push(&ev(i));
        }
        assert_eq!(ring.drain().len(), 5);
        for i in 5..9 {
            ring.push(&ev(i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0], ev(5));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(1000).capacity(), 1024);
        assert_eq!(EventRing::with_capacity(0).capacity(), 8);
    }

    #[test]
    fn category_discriminants_roundtrip() {
        for (i, cat) in Category::ALL.iter().enumerate() {
            assert_eq!(*cat as u16, i as u16);
            assert_eq!(Category::from_u16(i as u16), Some(*cat));
            assert!(!cat.name().is_empty());
        }
        assert_eq!(Category::from_u16(Category::ALL.len() as u16), None);
    }

    #[test]
    fn chrome_export_is_structurally_valid() {
        let events: Vec<TraceEvent> = (0..5).map(ev).collect();
        let json = export_chrome_trace(&events);
        assert_eq!(validate_chrome_trace(&json).unwrap(), 5);
        assert!(json.contains("\"name\":\"gate wait\""));
        // Instant event (dur 0) uses the `i` phase.
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}").unwrap(), 0);
    }

    #[test]
    fn disabled_span_is_inert() {
        // Tests in this binary that exercise the global flag all leave it
        // off; `span` must not register a ring or record anything.
        set_enabled(false);
        {
            let mut s = span(Category::Redistribute, 1);
            s.set_payload(2);
            assert!(!s.is_armed());
        }
        assert!(!enabled());
    }
}
