//! Key distributions used by the paper's evaluation (section 4): uniform and
//! Zipfian over a key range of `beta = 2^27`, with Zipf factors between 1
//! (mild skew) and 2 (high skew).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pma_common::Key;

/// Default key range of the paper's workloads (`beta = 2^27`).
pub const DEFAULT_KEY_RANGE: u64 = 1 << 27;

/// The shape of the key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Keys drawn uniformly from `[0, range)`.
    Uniform,
    /// Keys drawn from a (bounded, continuous-approximation) Zipf
    /// distribution over `[1, range]`: small keys are drawn most often, so
    /// skewed updates hammer neighbouring PMA segments — the worst case the
    /// paper studies.
    Zipf {
        /// The Zipf exponent `alpha` (1 = mild skew, 2 = high skew).
        alpha: f64,
    },
}

impl Distribution {
    /// Short label used in benchmark tables ("Uniform", "Zipf a=1.5", ...).
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "Uniform".to_string(),
            Distribution::Zipf { alpha } => format!("Zipf a={alpha}"),
        }
    }

    /// The four distributions of Figures 3 and 4.
    pub fn paper_set() -> Vec<Distribution> {
        vec![
            Distribution::Uniform,
            Distribution::Zipf { alpha: 1.0 },
            Distribution::Zipf { alpha: 1.5 },
            Distribution::Zipf { alpha: 2.0 },
        ]
    }
}

/// A seeded stream of keys following a [`Distribution`].
///
/// The Zipf sampler uses the standard bounded-Pareto (continuous) inverse-CDF
/// approximation of the Zipf ranks: `O(1)` per sample, no precomputed zeta
/// tables, and the same heavy skew towards small keys. This is a documented
/// substitution for an exact discrete Zipf sampler — workload generation only
/// needs the skew shape, not exact rank probabilities.
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    distribution: Distribution,
    range: u64,
    rng: SmallRng,
}

impl KeyGenerator {
    /// Creates a generator over `[0, range)` with the given seed.
    pub fn new(distribution: Distribution, range: u64, seed: u64) -> Self {
        assert!(range >= 2, "the key range must contain at least two keys");
        if let Distribution::Zipf { alpha } = distribution {
            assert!(alpha > 0.0, "the Zipf exponent must be positive");
        }
        Self {
            distribution,
            range,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The distribution this generator samples from.
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// Draws the next key.
    #[inline]
    pub fn next_key(&mut self) -> Key {
        match self.distribution {
            Distribution::Uniform => self.rng.gen_range(0..self.range) as Key,
            Distribution::Zipf { alpha } => {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                let n = self.range as f64;
                let x = if (alpha - 1.0).abs() < 1e-9 {
                    // alpha == 1: F(x) = ln(x) / ln(n)  =>  x = n^u.
                    n.powf(u)
                } else {
                    // alpha != 1: F(x) = (1 - x^(1-a)) / (1 - n^(1-a)).
                    let one_minus_a = 1.0 - alpha;
                    let tail = n.powf(one_minus_a);
                    (1.0 - u * (1.0 - tail)).powf(1.0 / one_minus_a)
                };
                let key = x.floor() as u64;
                (key.clamp(1, self.range) - 1) as Key
            }
        }
    }

    /// Draws `n` keys into a vector.
    pub fn take(&mut self, n: usize) -> Vec<Key> {
        (0..n).map(|_| self.next_key()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_stay_in_range_and_spread() {
        let mut g = KeyGenerator::new(Distribution::Uniform, 1000, 42);
        let keys = g.take(10_000);
        assert!(keys.iter().all(|&k| (0..1000).contains(&k)));
        // Rough uniformity: both halves of the domain are hit.
        let low = keys.iter().filter(|&&k| k < 500).count();
        assert!(low > 3500 && low < 6500, "low half got {low} of 10000");
    }

    #[test]
    fn zipf_is_skewed_towards_small_keys() {
        let mut g = KeyGenerator::new(Distribution::Zipf { alpha: 1.5 }, 1 << 20, 7);
        let keys = g.take(20_000);
        assert!(keys.iter().all(|&k| (0..(1 << 20)).contains(&k)));
        let tiny = keys.iter().filter(|&&k| k < 100).count();
        assert!(
            tiny > 10_000,
            "alpha=1.5 should put most mass on the smallest keys, got {tiny}/20000"
        );
    }

    #[test]
    fn higher_alpha_means_more_skew() {
        let count_small = |alpha: f64| {
            let mut g = KeyGenerator::new(Distribution::Zipf { alpha }, 1 << 20, 99);
            g.take(20_000).iter().filter(|&&k| k < 10).count()
        };
        let mild = count_small(1.0);
        let heavy = count_small(2.0);
        assert!(
            heavy > mild,
            "alpha=2 ({heavy}) must be more skewed than alpha=1 ({mild})"
        );
    }

    #[test]
    fn zipf_alpha_one_covers_the_whole_range() {
        let mut g = KeyGenerator::new(Distribution::Zipf { alpha: 1.0 }, 1 << 16, 3);
        let keys = g.take(50_000);
        let max = *keys.iter().max().unwrap();
        assert!(max > (1 << 14), "alpha=1 has a heavy tail, max was {max}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = KeyGenerator::new(Distribution::Zipf { alpha: 1.5 }, 1000, 5);
        let mut b = KeyGenerator::new(Distribution::Zipf { alpha: 1.5 }, 1000, 5);
        let mut c = KeyGenerator::new(Distribution::Zipf { alpha: 1.5 }, 1000, 6);
        let ka = a.take(100);
        assert_eq!(ka, b.take(100));
        assert_ne!(ka, c.take(100));
    }

    #[test]
    fn labels_and_paper_set() {
        assert_eq!(Distribution::Uniform.label(), "Uniform");
        assert_eq!(Distribution::Zipf { alpha: 2.0 }.label(), "Zipf a=2");
        assert_eq!(Distribution::paper_set().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two keys")]
    fn tiny_range_is_rejected() {
        let _ = KeyGenerator::new(Distribution::Uniform, 1, 0);
    }
}
