//! Multi-threaded workload drivers reproducing the experimental setup of the
//! paper's section 4: a set of updater threads inserting/deleting keys drawn
//! from a distribution while the remaining threads continuously scan all
//! elements in sorted order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pma_common::obs::{MetricsSeries, Observations};
use pma_common::{ConcurrentMap, Key, PmaError, Value};

use crate::distribution::KeyGenerator;
use crate::latency::LatencyHistogram;
use crate::spec::{UpdatePattern, WorkloadSpec};

/// How often the driver's metrics sampler snapshots the measured structure's
/// counters (`PMA_METRICS_INTERVAL_MS` overrides, milliseconds).
fn metrics_interval() -> Duration {
    let ms = std::env::var("PMA_METRICS_INTERVAL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(25);
    Duration::from_millis(ms)
}

/// Result of running one workload against one data structure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Measurement {
    /// Update operations issued (insertions + deletions).
    pub update_ops: u64,
    /// Wall-clock duration of the update phase in seconds.
    pub update_seconds: f64,
    /// Total elements visited by the scanner threads.
    pub scanned_elements: u64,
    /// Cumulative busy time of the scanner threads in seconds.
    pub scan_seconds: f64,
    /// Number of complete scans performed.
    pub scans_completed: u64,
    /// Elements stored in the structure after the run (after a flush).
    pub final_len: usize,
    /// Update latencies sampled one in `spec.lat_sample_interval`
    /// operations (merged across the updater threads), reported as
    /// p50/p99/p999 next to the aggregate throughput — batching, delegated
    /// rebalances and shard splits show up here long before they dent the
    /// ops/s average.
    pub update_latency: LatencyHistogram,
    /// Wall-clock latency of every complete `scan_all` pass (merged across
    /// the scanner threads). Scans run for milliseconds, so every pass is
    /// timed — no sampling needed.
    pub scan_latency: LatencyHistogram,
    /// Time series of the structure's metrics (`observe_metrics`) sampled
    /// on an interval (`PMA_METRICS_INTERVAL_MS`, default 25 ms) while the
    /// workload ran — e.g.
    /// `queue_depth` over time, from which the harness reports a p99.
    /// `None` when the structure exposes no metrics.
    pub metrics: Option<MetricsSeries>,
    /// Combining-queue counters of the measured structure after the run
    /// (`None` for structures without combining machinery). `late_replays`
    /// must be zero: anything else means an operation was applied after the
    /// window owning its key range was released.
    pub combining: Option<pma_common::CombiningStats>,
    /// Structural-maintenance counters of the measured structure after the
    /// run (`None` for structures without background maintenance). For the
    /// sharded engine this reports how many shard splits/merges the workload
    /// triggered and — the figure the incremental split protocol is judged
    /// by — how long writers were stalled by their fences (`stall_ns`).
    pub maintenance: Option<pma_common::MaintenanceStats>,
}

impl Measurement {
    /// Updates per second (the unit of Figure 3's upper plots, elements/sec).
    pub fn update_throughput(&self) -> f64 {
        if self.update_seconds <= 0.0 {
            0.0
        } else {
            self.update_ops as f64 / self.update_seconds
        }
    }

    /// Elements scanned per second of scanner busy time (Figure 3's lower
    /// plots).
    pub fn scan_throughput(&self) -> f64 {
        if self.scan_seconds <= 0.0 {
            0.0
        } else {
            self.scanned_elements as f64 / self.scan_seconds
        }
    }
}

/// Runs `spec` against `map` and measures throughput.
///
/// Updater threads issue operations according to `spec.pattern`; scanner
/// threads run [`ConcurrentMap::scan_all`] in a loop until the updaters are
/// done. The structure is flushed before the final length is read.
pub fn run_workload<M: ConcurrentMap + ?Sized>(map: &M, spec: &WorkloadSpec) -> Measurement {
    match spec.pattern {
        UpdatePattern::InsertOnly => run_insert_only(map, spec),
        UpdatePattern::MixedUpdates => run_mixed_updates(map, spec),
    }
}

/// Figure 3 a–c: start empty, insert `total_elements` keys.
pub fn run_insert_only<M: ConcurrentMap + ?Sized>(map: &M, spec: &WorkloadSpec) -> Measurement {
    let ops_per_thread = spec.ops_per_update_thread();
    run_phases(map, spec, move |map, spec, tid| {
        let mut generator = KeyGenerator::new(
            spec.distribution,
            spec.key_range,
            spec.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut ops = 0u64;
        let mut latency = LatencyHistogram::new();
        let sample_every = spec.lat_sample_interval.max(1);
        for i in 0..ops_per_thread {
            let key = generator.next_key();
            // Sampled, not per-op: timing every operation would tax the
            // throughput being measured (see `lat_sample_interval`).
            if i % sample_every == 0 {
                let started = Instant::now();
                map.insert(key, key.wrapping_mul(2));
                latency.record(started.elapsed().as_nanos() as u64);
            } else {
                map.insert(key, key.wrapping_mul(2));
            }
            ops += 1;
        }
        (ops, latency)
    })
}

/// Figure 3 d–f: preload `total_elements` keys, then run rounds that insert a
/// small batch of new keys and delete it again.
pub fn run_mixed_updates<M: ConcurrentMap + ?Sized>(map: &M, spec: &WorkloadSpec) -> Measurement {
    preload(map, spec);
    let batch_per_thread = ((spec.total_elements as f64 * spec.batch_fraction) as usize)
        .div_ceil(spec.threads.update_threads.max(1))
        .max(1);
    let rounds = spec.rounds.max(1);
    run_phases(map, spec, move |map, spec, tid| {
        let mut generator = KeyGenerator::new(
            spec.distribution,
            spec.key_range,
            spec.seed ^ 0xABCD ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut ops = 0u64;
        let mut latency = LatencyHistogram::new();
        let sample_every = spec.lat_sample_interval.max(1);
        for _ in 0..rounds {
            let batch = generator.take(batch_per_thread);
            for (i, &key) in batch.iter().enumerate() {
                if i % sample_every == 0 {
                    let started = Instant::now();
                    map.insert(key, key);
                    latency.record(started.elapsed().as_nanos() as u64);
                } else {
                    map.insert(key, key);
                }
                ops += 1;
            }
            for (i, &key) in batch.iter().enumerate() {
                if i % sample_every == 0 {
                    let started = Instant::now();
                    map.remove(key);
                    latency.record(started.elapsed().as_nanos() as u64);
                } else {
                    map.remove(key);
                }
                ops += 1;
            }
        }
        (ops, latency)
    })
}

/// Result of one bulk-ingestion run: the cold-load phase timed over both the
/// bulk path (`Registry::build_loaded` → the backend's native `from_sorted`)
/// and the baseline of looping `insert` over the same keys.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BulkIngestMeasurement {
    /// Distinct sorted keys loaded.
    pub elements: usize,
    /// Wall-clock seconds of the bulk-load construction.
    pub bulk_seconds: f64,
    /// Wall-clock seconds of building a fresh instance via looped `insert`
    /// (plus the flush that settles asynchronous modes).
    pub looped_seconds: f64,
    /// Elements stored after the bulk load (sanity: equals `elements`).
    pub final_len: usize,
}

impl BulkIngestMeasurement {
    /// Bulk-loaded elements per second.
    pub fn bulk_throughput(&self) -> f64 {
        if self.bulk_seconds <= 0.0 {
            0.0
        } else {
            self.elements as f64 / self.bulk_seconds
        }
    }

    /// How many times faster the bulk load was than the insert loop.
    pub fn speedup(&self) -> f64 {
        if self.bulk_seconds <= 0.0 {
            0.0
        } else {
            self.looped_seconds / self.bulk_seconds
        }
    }
}

/// The sorted, distinct key/value pairs a bulk-ingest run loads:
/// `spec.total_elements` keys spread evenly over `spec.key_range` (the same
/// distribution [`preload`] produces), with `value = key`.
pub fn bulk_ingest_items(spec: &WorkloadSpec) -> Vec<(Key, Value)> {
    let n = spec.total_elements as u64;
    let stride = (spec.key_range / n.max(1)).max(1);
    (0..n)
        .map(|i| ((i * stride) as Key, (i * stride) as Value))
        .collect()
}

/// Cold bulk ingestion (the §6 dynamic-graph loading scenario): constructs
/// the `backend` registry spec pre-populated with [`bulk_ingest_items`] via
/// `Registry::build_loaded`, verifies the loaded contents with an ordered
/// scan, then times the same load through looped point `insert`s on a fresh
/// instance for comparison.
///
/// # Errors
/// Propagates registry errors (unknown backend, malformed argument) and
/// fails with [`PmaError::Conflict`] when the loaded structure's scan does
/// not match the input (which would mean a broken `from_sorted`).
pub fn run_bulk_ingest(
    backend: &str,
    spec: &WorkloadSpec,
) -> Result<BulkIngestMeasurement, PmaError> {
    crate::factory::ensure_builtin_backends();
    let items = bulk_ingest_items(spec);

    let start = Instant::now();
    let loaded = pma_common::Registry::global().build_loaded(backend, &items)?;
    let bulk_seconds = start.elapsed().as_secs_f64();

    // Verify: the ordered scan must reproduce the input exactly.
    let stats = loaded.scan_all();
    let mut expected = pma_common::ScanStats::default();
    for &(k, v) in &items {
        expected.visit(k, v);
    }
    if stats != expected {
        return Err(PmaError::Conflict(format!(
            "bulk load of `{backend}` corrupted the contents: scanned {stats:?}, expected {expected:?}"
        )));
    }
    let final_len = loaded.len();
    drop(loaded);

    // Baseline: the same cold load through the point-insert path.
    let looped = pma_common::Registry::global().build(backend)?;
    let start = Instant::now();
    for &(k, v) in &items {
        looped.insert(k, v);
    }
    looped.flush();
    let looped_seconds = start.elapsed().as_secs_f64();

    Ok(BulkIngestMeasurement {
        elements: items.len(),
        bulk_seconds,
        looped_seconds,
        final_len,
    })
}

/// Preloads the structure with `total_elements` distinct keys spread evenly
/// over the key range (not part of the measured phase).
pub fn preload<M: ConcurrentMap + ?Sized>(map: &M, spec: &WorkloadSpec) {
    let n = spec.total_elements as u64;
    let stride = (spec.key_range / n.max(1)).max(1);
    std::thread::scope(|scope| {
        let threads = spec.threads.update_threads.max(1);
        for tid in 0..threads {
            let map_ref = &map;
            scope.spawn(move || {
                let mut i = tid as u64;
                while i < n {
                    let key = (i * stride) as Key;
                    map_ref.insert(key, key);
                    i += threads as u64;
                }
            });
        }
    });
    map.flush();
}

/// Shared skeleton: spawns scanners and updaters, times both phases. The
/// update closure returns its operation count and its thread-local latency
/// histogram (merged into the measurement after the join).
fn run_phases<M, F>(map: &M, spec: &WorkloadSpec, update_fn: F) -> Measurement
where
    M: ConcurrentMap + ?Sized,
    F: Fn(&M, &WorkloadSpec, usize) -> (u64, LatencyHistogram) + Send + Sync,
{
    let stop = AtomicBool::new(false);
    let update_fn = &update_fn;
    let stop_ref = &stop;
    let mut measurement = Measurement::default();

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Metrics sampler: snapshots the structure's counters on an interval
        // while the workload runs, so in-run behaviour (queue depth, cow
        // copies accruing, epoch lag) is visible over time rather than only
        // as end-of-run totals. Always takes a final sample at stop, so even
        // sub-interval runs yield a non-empty series.
        let sampler = scope.spawn(move || {
            let interval = metrics_interval();
            let sampler_start = Instant::now();
            let mut series = MetricsSeries::new();
            loop {
                let stopped = stop_ref.load(Ordering::Relaxed);
                let mut sink = Observations::new();
                map.observe_metrics(&mut sink);
                series.push(
                    sampler_start.elapsed().as_millis() as u64,
                    sink.into_snapshot(),
                );
                if stopped {
                    return series;
                }
                // Sleep in short slices so the final sample lands promptly.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline && !stop_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2).min(interval));
                }
            }
        });

        // Scanner threads: scan until the updaters finish, timing every
        // complete pass.
        let scanners: Vec<_> = (0..spec.threads.scan_threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut elements = 0u64;
                    let mut scans = 0u64;
                    let mut latency = LatencyHistogram::new();
                    let scan_start = Instant::now();
                    while !stop_ref.load(Ordering::Relaxed) {
                        let pass = Instant::now();
                        let stats = map.scan_all();
                        latency.record(pass.elapsed().as_nanos() as u64);
                        elements += stats.count;
                        scans += 1;
                    }
                    (elements, scans, scan_start.elapsed().as_secs_f64(), latency)
                })
            })
            .collect();

        // Updater threads.
        let updaters: Vec<_> = (0..spec.threads.update_threads)
            .map(|tid| scope.spawn(move || update_fn(map, spec, tid)))
            .collect();

        for handle in updaters {
            let (ops, latency) = handle.join().expect("an updater thread panicked");
            measurement.update_ops += ops;
            measurement.update_latency.merge(&latency);
        }
        measurement.update_seconds = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);

        for handle in scanners {
            let (elements, scans, seconds, latency) =
                handle.join().expect("a scanner thread panicked");
            measurement.scanned_elements += elements;
            measurement.scans_completed += scans;
            measurement.scan_seconds += seconds;
            measurement.scan_latency.merge(&latency);
        }

        let series = sampler.join().expect("the metrics sampler panicked");
        // A structure with no metrics yields all-empty snapshots; report
        // that as "no metrics" rather than an empty-but-present series.
        if series.points.iter().any(|p| !p.snapshot.metrics.is_empty()) {
            measurement.metrics = Some(series);
        }
    });

    map.flush();
    measurement.final_len = map.len();
    measurement.combining = map.combining_stats();
    measurement.maintenance = map.maintenance_stats();
    if let Some(combining) = measurement.combining {
        debug_assert_eq!(
            combining.late_replays, 0,
            "an operation was applied after its owning window was released"
        );
    }
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::latency::LATENCY_SAMPLE_INTERVAL;
    use crate::spec::ThreadSplit;
    use pma_baselines::btree::BPlusTree;
    use pma_core::{ConcurrentPma, PmaParams};

    fn tiny_spec(pattern: UpdatePattern, scan_threads: usize) -> WorkloadSpec {
        WorkloadSpec {
            distribution: Distribution::Uniform,
            key_range: 1 << 16,
            total_elements: 20_000,
            batch_fraction: 0.05,
            rounds: 2,
            threads: ThreadSplit {
                update_threads: 4,
                scan_threads,
            },
            pattern,
            seed: 42,
            // Pinned (not the env-sensitive default): the sample-count
            // assertions below depend on it.
            lat_sample_interval: LATENCY_SAMPLE_INTERVAL,
        }
    }

    #[test]
    fn insert_only_on_btree_counts_ops() {
        let map = BPlusTree::with_defaults();
        let spec = tiny_spec(UpdatePattern::InsertOnly, 0);
        let m = run_insert_only(&map, &spec);
        assert_eq!(m.update_ops, 20_000);
        assert!(m.update_seconds > 0.0);
        assert!(m.update_throughput() > 0.0);
        // One in LATENCY_SAMPLE_INTERVAL operations is timed (5000 ops per
        // thread divide evenly here) and percentiles are ordered.
        assert_eq!(
            m.update_latency.count(),
            m.update_ops / LATENCY_SAMPLE_INTERVAL as u64
        );
        let (p50, p999) = (
            m.update_latency.p50().unwrap(),
            m.update_latency.p999().unwrap(),
        );
        assert!(p50 <= p999, "p50 {p50} > p999 {p999}");
        // Uniform keys over 2^16 with 20k draws: duplicates exist, so the
        // structure holds at most update_ops elements.
        assert!(m.final_len > 0 && m.final_len <= 20_000);
        assert_eq!(map.len(), m.final_len);
        // Structures without background maintenance report no stall column,
        // and without any counters at all, no metrics series either.
        assert!(m.maintenance.is_none());
        assert!(m.metrics.is_none());
    }

    #[test]
    fn insert_only_on_pma_with_scanners() {
        let map = ConcurrentPma::new(PmaParams::small()).unwrap();
        let spec = tiny_spec(UpdatePattern::InsertOnly, 2);
        let m = run_insert_only(&map, &spec);
        assert_eq!(m.update_ops, 20_000);
        assert!(m.scans_completed > 0, "scanners must have run");
        assert!(m.scan_seconds > 0.0);
        assert_eq!(m.final_len, map.len());
        // Scan after the run sees exactly the stored elements.
        assert_eq!(map.scan_all().count as usize, m.final_len);
        // Every completed scan pass was timed.
        assert_eq!(m.scan_latency.count(), m.scans_completed);
        // The PMA exposes counters, so the sampler collected a series with
        // at least the final at-stop snapshot, and the insert counter made
        // it into that snapshot.
        let series = m.metrics.as_ref().expect("PMA runs carry metrics");
        assert!(!series.is_empty());
        let inserts = series.last().and_then(|snap| snap.counter("inserts"));
        assert!(inserts.is_some_and(|n| n > 0), "{inserts:?}");
    }

    #[test]
    fn mixed_updates_preloads_and_returns_to_preload_size() {
        let map = BPlusTree::with_defaults();
        let spec = tiny_spec(UpdatePattern::MixedUpdates, 0);
        let m = run_mixed_updates(&map, &spec);
        assert!(m.update_ops > 0);
        let samples = m.update_latency.count();
        assert!(samples > 0 && samples <= m.update_ops, "{samples}");
        // Every inserted batch is deleted again, so the final size is at most
        // preload + (keys that collided with preload and were deleted): the
        // final length can only have shrunk or stayed equal.
        assert!(m.final_len <= 20_000);
        assert!(m.final_len > 0);
    }

    #[test]
    fn preload_inserts_distinct_keys() {
        let map = BPlusTree::with_defaults();
        let spec = WorkloadSpec {
            total_elements: 5000,
            key_range: 1 << 20,
            ..tiny_spec(UpdatePattern::MixedUpdates, 0)
        };
        preload(&map, &spec);
        assert_eq!(map.len(), 5000);
    }

    #[test]
    fn bulk_ingest_loads_verifies_and_compares() {
        let spec = WorkloadSpec {
            total_elements: 30_000,
            key_range: 1 << 20,
            ..tiny_spec(UpdatePattern::InsertOnly, 0)
        };
        for backend in ["pma-batch:1", "btree"] {
            let m = run_bulk_ingest(backend, &spec).unwrap();
            assert_eq!(m.elements, 30_000, "{backend}");
            assert_eq!(m.final_len, 30_000, "{backend}");
            assert!(m.bulk_seconds > 0.0 && m.looped_seconds > 0.0, "{backend}");
            assert!(m.bulk_throughput() > 0.0, "{backend}");
        }
        assert!(run_bulk_ingest("warp-drive", &spec).is_err());
    }

    #[test]
    fn bulk_ingest_items_are_sorted_and_distinct() {
        let spec = WorkloadSpec {
            total_elements: 1_000,
            key_range: 1 << 16,
            ..WorkloadSpec::default()
        };
        let items = bulk_ingest_items(&spec);
        assert_eq!(items.len(), 1_000);
        assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn workload_dispatch_matches_pattern() {
        let map = BPlusTree::with_defaults();
        let spec = tiny_spec(UpdatePattern::InsertOnly, 0);
        let m = run_workload(&map, &spec);
        assert_eq!(m.update_ops, 20_000);
    }
}
