//! Factory for the data structures compared in the paper's evaluation, so the
//! experiment binaries can build them by name.

use std::sync::Arc;
use std::time::Duration;

use pma_baselines::{ArtIndex, BPlusTree, BTreeConfig, BwTreeLike, MasstreeLike};
use pma_common::ConcurrentMap;
use pma_core::{ConcurrentPma, PmaParams, RebalancePolicy, UpdateMode};

/// The data structures of Figure 3 plus the variants used by Figure 4 and the
/// section 4.1 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Masstree-like write-optimised tree.
    Masstree,
    /// Bw-Tree-like delta structure.
    BwTree,
    /// ART / B+-tree: lock-coupled B+-tree with 4 KiB leaves.
    ArtBTree,
    /// The 8 KiB-leaf B+-tree variant (section 4.1 ablation).
    ArtBTreeLargeLeaves,
    /// Standalone ART index (coarse-grained readers-writer lock).
    Art,
    /// Concurrent PMA, synchronous updates (Figure 4 "Baseline").
    PmaSynchronous,
    /// Concurrent PMA, one-by-one asynchronous updates (Figure 4 "1by1").
    PmaOneByOne,
    /// Concurrent PMA, batch asynchronous updates with the given `t_delay`
    /// in milliseconds (Figure 4 "Batch ...ms"). The paper's headline PMA
    /// configuration is `PmaBatch(100)`.
    PmaBatch(u64),
    /// PMA with 256-element segments (section 4.1 ablation).
    PmaLargeSegments,
}

impl StructureKind {
    /// The four structures of Figure 3.
    pub fn figure3_set() -> Vec<StructureKind> {
        vec![
            StructureKind::Masstree,
            StructureKind::BwTree,
            StructureKind::ArtBTree,
            StructureKind::PmaBatch(100),
        ]
    }

    /// The PMA variants of Figure 4.
    pub fn figure4_set() -> Vec<StructureKind> {
        vec![
            StructureKind::PmaSynchronous,
            StructureKind::PmaOneByOne,
            StructureKind::PmaBatch(0),
            StructureKind::PmaBatch(100),
            StructureKind::PmaBatch(200),
            StructureKind::PmaBatch(400),
            StructureKind::PmaBatch(800),
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            StructureKind::Masstree => "MassTree".to_string(),
            StructureKind::BwTree => "BwTree".to_string(),
            StructureKind::ArtBTree => "ART/B+tree".to_string(),
            StructureKind::ArtBTreeLargeLeaves => "ART/B+tree 8KB".to_string(),
            StructureKind::Art => "ART".to_string(),
            StructureKind::PmaSynchronous => "PMA Baseline".to_string(),
            StructureKind::PmaOneByOne => "PMA 1by1".to_string(),
            StructureKind::PmaBatch(ms) => format!("PMA Batch {ms}ms"),
            StructureKind::PmaLargeSegments => "PMA seg=256".to_string(),
        }
    }

    /// Builds a fresh instance of the structure.
    pub fn build(&self) -> Arc<dyn ConcurrentMap> {
        match self {
            StructureKind::Masstree => Arc::new(MasstreeLike::new()),
            StructureKind::BwTree => Arc::new(BwTreeLike::new()),
            StructureKind::ArtBTree => Arc::new(BPlusTree::with_defaults()),
            StructureKind::ArtBTreeLargeLeaves => Arc::new(BPlusTree::with_name(
                BTreeConfig::large_leaves(),
                "B+tree 8KB",
            )),
            StructureKind::Art => Arc::new(ArtIndex::new()),
            StructureKind::PmaSynchronous => Arc::new(
                ConcurrentPma::new(pma_params(UpdateMode::Synchronous, 128))
                    .expect("valid parameters"),
            ),
            StructureKind::PmaOneByOne => {
                let mut params = pma_params(UpdateMode::OneByOne, 128);
                params.rebalance_policy = RebalancePolicy::Adaptive;
                Arc::new(ConcurrentPma::new(params).expect("valid parameters"))
            }
            StructureKind::PmaBatch(ms) => Arc::new(
                ConcurrentPma::new(pma_params(
                    UpdateMode::Batch {
                        t_delay: Duration::from_millis(*ms),
                    },
                    128,
                ))
                .expect("valid parameters"),
            ),
            StructureKind::PmaLargeSegments => Arc::new(
                ConcurrentPma::new(pma_params(
                    UpdateMode::Batch {
                        t_delay: Duration::from_millis(100),
                    },
                    256,
                ))
                .expect("valid parameters"),
            ),
        }
    }
}

/// The paper's PMA configuration with a configurable segment capacity and
/// update mode, sized for laptop-scale runs (the worker count adapts to the
/// available cores instead of being fixed at 8).
fn pma_params(update_mode: UpdateMode, segment_capacity: usize) -> PmaParams {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
        .max(1);
    PmaParams {
        segment_capacity,
        segments_per_gate: 8,
        rebalancer_workers: workers,
        update_mode,
        ..PmaParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_sets_have_expected_sizes() {
        assert_eq!(StructureKind::figure3_set().len(), 4);
        assert_eq!(StructureKind::figure4_set().len(), 7);
    }

    #[test]
    fn every_kind_builds_and_works() {
        let kinds = [
            StructureKind::Masstree,
            StructureKind::BwTree,
            StructureKind::ArtBTree,
            StructureKind::ArtBTreeLargeLeaves,
            StructureKind::Art,
            StructureKind::PmaSynchronous,
            StructureKind::PmaOneByOne,
            StructureKind::PmaBatch(10),
            StructureKind::PmaLargeSegments,
        ];
        for kind in kinds {
            let map = kind.build();
            for k in 0..500i64 {
                map.insert(k, k);
            }
            map.flush();
            assert_eq!(map.len(), 500, "{}", kind.label());
            assert_eq!(map.get(123), Some(123), "{}", kind.label());
            assert_eq!(map.scan_all().count, 500, "{}", kind.label());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(StructureKind::Masstree.label(), "MassTree");
        assert_eq!(StructureKind::PmaBatch(100).label(), "PMA Batch 100ms");
        assert_eq!(StructureKind::PmaLargeSegments.label(), "PMA seg=256");
    }
}
