//! Registry-backed construction of the structures compared in the paper's
//! evaluation.
//!
//! The experiment binaries, benches, examples and tests select structures by
//! *backend spec string* (see [`pma_common::registry`]) — e.g.
//! `"pma-batch:100"`, `"btree:8k"` — and this module provides:
//!
//! * [`ensure_builtin_backends`] — one-time installation of every built-in
//!   backend (the PMA variants from `pma_core` and the tree baselines from
//!   `pma_baselines`) into the global [`Registry`];
//! * [`build`] / [`label`] — convenience wrappers over the global registry;
//! * the spec sets of the paper's figures ([`figure3_specs`],
//!   [`figure4_specs`], [`ablation_segment_specs`], [`ablation_leaf_specs`]).
//!
//! Adding a brand-new backend does **not** require touching this crate:
//! register it on [`Registry::global`] at startup and select it by name
//! (e.g. via the experiment binaries' `--structures` flag).

use std::sync::Arc;
use std::sync::Once;

use pma_common::{ConcurrentMap, PmaError, Registry};

/// Installs the built-in backends into [`Registry::global`] (idempotent):
/// the PMA variants from `pma_core`, the tree baselines from
/// `pma_baselines`, and the range-sharded engine from `pma_engine` (whose
/// `sharded:<n>:<inner-spec>` specs resolve their inner structure through
/// the same global registry).
pub fn ensure_builtin_backends() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        pma_core::register_backends(Registry::global());
        pma_baselines::register_backends(Registry::global());
        pma_engine::register_backends(Registry::global());
    });
}

/// Builds the structure selected by `spec` via the global registry.
pub fn build(spec: &str) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    ensure_builtin_backends();
    Registry::global().build(spec)
}

/// Builds the structure selected by `spec`, panicking with the registry's
/// descriptive error on failure (for binaries and tests).
pub fn build_or_panic(spec: &str) -> Arc<dyn ConcurrentMap> {
    build(spec).unwrap_or_else(|e| panic!("cannot build `{spec}`: {e}"))
}

/// Builds the structure selected by `spec` pre-populated with the sorted
/// `items`, dispatching to the backend's native bulk loader when it has one
/// (see `Registry::build_loaded` in [`pma_common::registry`]).
pub fn build_loaded(
    spec: &str,
    items: &[(pma_common::Key, pma_common::Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    ensure_builtin_backends();
    Registry::global().build_loaded(spec, items)
}

/// Display label for `spec`, matching the paper's figures; falls back to the
/// spec itself for unknown backends.
pub fn label(spec: &str) -> String {
    ensure_builtin_backends();
    Registry::global()
        .label(spec)
        .unwrap_or_else(|_| spec.to_string())
}

/// Builds the **byte-keyed** structure selected by `spec` via the global
/// registry's byte-backend table (`bpma:<chunk>`, `bbtree`, `b64:<inner>`,
/// `bsharded:<n>:<inner>`).
pub fn build_bytes(spec: &str) -> Result<Arc<dyn pma_common::ConcurrentByteMap>, PmaError> {
    ensure_builtin_backends();
    Registry::global().build_bytes(spec)
}

/// Builds the byte-keyed structure selected by `spec` pre-populated with the
/// key-sorted `items`, through the backend's native bulk loader when it has
/// one.
pub fn build_bytes_loaded(
    spec: &str,
    items: &[(Vec<u8>, pma_common::Value)],
) -> Result<Arc<dyn pma_common::ConcurrentByteMap>, PmaError> {
    ensure_builtin_backends();
    Registry::global().build_bytes_loaded(spec, items)
}

/// Display label for a byte-backend `spec`; falls back to the spec itself.
pub fn byte_label(spec: &str) -> String {
    ensure_builtin_backends();
    Registry::global()
        .byte_label(spec)
        .unwrap_or_else(|_| spec.to_string())
}

/// The four structures of Figure 3.
pub fn figure3_specs() -> Vec<String> {
    ["masstree", "bwtree", "btree", "pma-batch:100"]
        .map(String::from)
        .to_vec()
}

/// The PMA variants of Figure 4.
pub fn figure4_specs() -> Vec<String> {
    [
        "pma-sync",
        "pma-1by1",
        "pma-batch:0",
        "pma-batch:100",
        "pma-batch:200",
        "pma-batch:400",
        "pma-batch:800",
    ]
    .map(String::from)
    .to_vec()
}

/// The section 4.1 segment-size ablation (128 vs 256 elements per segment).
pub fn ablation_segment_specs() -> Vec<String> {
    ["pma-batch:100", "pma-seg:256"].map(String::from).to_vec()
}

/// The section 4.1 B+-tree leaf-size ablation (4 KiB vs 8 KiB leaves).
pub fn ablation_leaf_specs() -> Vec<String> {
    ["btree:4k", "btree:8k"].map(String::from).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_sets_have_expected_sizes() {
        assert_eq!(figure3_specs().len(), 4);
        assert_eq!(figure4_specs().len(), 7);
        assert_eq!(ablation_segment_specs().len(), 2);
        assert_eq!(ablation_leaf_specs().len(), 2);
    }

    #[test]
    fn every_registered_byte_backend_builds_and_works() {
        ensure_builtin_backends();
        let names = Registry::global().byte_names();
        assert!(names.contains(&"bpma".to_string()), "{names:?}");
        assert!(names.contains(&"bsharded".to_string()), "{names:?}");
        assert!(names.contains(&"bbtree".to_string()), "{names:?}");
        for name in names {
            let map = build_bytes(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
            for i in 0..200 {
                map.insert(format!("key/{i:04}").as_bytes(), i);
            }
            map.flush();
            assert_eq!(map.len(), 200, "{name}");
            assert_eq!(map.get(b"key/0042"), Some(42), "{name}");
            assert_eq!(map.prefix_stats(b"key/01").count, 100, "{name}");
            assert!(!byte_label(&name).is_empty());
        }
    }

    #[test]
    fn every_registered_backend_builds_and_works() {
        ensure_builtin_backends();
        for name in Registry::global().names() {
            let map = build_or_panic(&name);
            for k in 0..500i64 {
                map.insert(k, k);
            }
            map.flush();
            assert_eq!(map.len(), 500, "{name}");
            assert_eq!(map.get(123), Some(123), "{name}");
            assert_eq!(map.scan_all().count, 500, "{name}");
            assert!(!label(&name).is_empty());
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(label("masstree"), "MassTree");
        assert_eq!(label("pma-batch:100"), "PMA Batch 100ms");
        assert_eq!(label("pma-seg:256"), "PMA seg=256");
        assert_eq!(label("btree:8k"), "ART/B+tree 8KB");
        assert_eq!(
            label("sharded:4:pma-batch:100"),
            "Sharded 4x PMA Batch 100ms"
        );
        // Unknown specs fall back to themselves so tables stay renderable.
        assert_eq!(label("not-a-backend:3"), "not-a-backend:3");
    }

    #[test]
    fn figure_specs_resolve_through_the_registry() {
        for spec in figure3_specs()
            .into_iter()
            .chain(figure4_specs())
            .chain(ablation_segment_specs())
            .chain(ablation_leaf_specs())
        {
            assert!(build(&spec).is_ok(), "{spec}");
        }
    }
}
