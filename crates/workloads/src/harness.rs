//! The measurement harness: repeats a workload, reports the median (as the
//! paper does), and renders paper-style result tables.

use pma_common::ConcurrentMap;

use crate::drivers::{run_workload, Measurement};
use crate::spec::WorkloadSpec;

/// Runs `spec` `repeats` times against fresh structures produced by `factory`
/// and returns the run with the median update throughput (the paper reports
/// medians over 5 repetitions).
pub fn measure_median<F, M>(factory: F, spec: &WorkloadSpec, repeats: usize) -> Measurement
where
    F: Fn() -> M,
    M: std::ops::Deref,
    M::Target: ConcurrentMap,
{
    assert!(repeats >= 1);
    let mut runs: Vec<Measurement> = (0..repeats)
        .map(|_| {
            let map = factory();
            run_workload(&*map, spec)
        })
        .collect();
    runs.sort_by(|a, b| {
        a.update_throughput()
            .partial_cmp(&b.update_throughput())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

/// One row of a result table.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Structure label (e.g. "PMA Batch 100ms").
    pub structure: String,
    /// Workload label (e.g. "Zipf a=1.5").
    pub workload: String,
    /// The measurement.
    pub measurement: Measurement,
}

/// Renders rows the way the paper's figures report them: update throughput in
/// millions of elements per second and scan throughput in hundreds of
/// millions of elements per second, plus the update tail latencies
/// (p50/p99/p999 in microseconds, power-of-two bucket resolution) so effects
/// that average out of the throughput column — batch flushes, delegated
/// rebalances, shard splits — stay visible. The last three columns surface
/// the background machinery: `owned` is how many queued operations were
/// resolved while their window was owned, `late` (replays outside an owned
/// window) must read 0, `stall[us]` is how long writers were fenced out
/// by structural maintenance (the sharded engine's split/merge fences),
/// `cow` is how many chunk payloads the copy-on-write path had to copy for
/// live snapshots, `lag` is the worst snapshot generation lag observed,
/// `bp` counts writer back-offs under delta-log backpressure, and `samples`
/// is how many update latencies the histogram columns rest on (one in
/// `lat_sample_interval` operations) — structures without the respective
/// machinery show a dash.
pub fn render_table(title: &str, rows: &[ResultRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<20} {:<14} {:>14} {:>16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>6} {:>9} {:>8} {:>5} {:>6} {:>9}\n",
        "structure",
        "workload",
        "updates [M/s]",
        "scans [x10^8/s]",
        "p50[us]",
        "p99[us]",
        "p999[us]",
        "elements",
        "owned",
        "late",
        "stall[us]",
        "cow",
        "lag",
        "bp",
        "samples"
    ));
    for row in rows {
        let m = &row.measurement;
        let scan = if m.scan_seconds > 0.0 {
            format!("{:.3}", m.scan_throughput() / 1.0e8)
        } else {
            "-".to_string()
        };
        let (owned, late) = match m.combining {
            Some(c) => (c.owned_applies.to_string(), c.late_replays.to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        let (stall, cow, lag, bp) = match m.maintenance {
            Some(s) => (
                (s.stall_ns / 1_000).to_string(),
                s.cow_copies.to_string(),
                s.snapshot_lag.to_string(),
                s.delta_backpressure_waits.to_string(),
            ),
            None => (
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ),
        };
        out.push_str(&format!(
            "{:<20} {:<14} {:>14.3} {:>16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>6} {:>9} {:>8} {:>5} {:>6} {:>9}\n",
            row.structure,
            row.workload,
            m.update_throughput() / 1.0e6,
            scan,
            m.update_latency.render_us(0.50),
            m.update_latency.render_us(0.99),
            m.update_latency.render_us(0.999),
            m.final_len,
            owned,
            late,
            stall,
            cow,
            lag,
            bp,
            m.update_latency.count(),
        ));
    }
    out
}

/// Renders a speed-up table (Figure 4): every row's update throughput is
/// reported relative to the row with the `baseline` structure label within
/// the same workload.
pub fn render_speedup_table(title: &str, rows: &[ResultRow], baseline: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} (speed-up vs {baseline}) ==\n"));
    out.push_str(&format!(
        "{:<20} {:<14} {:>14} {:>10}\n",
        "structure", "workload", "updates [M/s]", "speed-up"
    ));
    for row in rows {
        let base = rows
            .iter()
            .find(|r| r.workload == row.workload && r.structure == baseline)
            .map(|r| r.measurement.update_throughput())
            .unwrap_or(0.0);
        let speedup = if base > 0.0 {
            row.measurement.update_throughput() / base
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<20} {:<14} {:>14.3} {:>9.2}x\n",
            row.structure,
            row.workload,
            row.measurement.update_throughput() / 1.0e6,
            speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::spec::{ThreadSplit, UpdatePattern};
    use pma_baselines::btree::BPlusTree;
    use std::sync::Arc;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            distribution: Distribution::Uniform,
            key_range: 1 << 14,
            total_elements: 5_000,
            threads: ThreadSplit {
                update_threads: 2,
                scan_threads: 1,
            },
            pattern: UpdatePattern::InsertOnly,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn measure_median_runs_requested_repeats() {
        let m = measure_median(|| Arc::new(BPlusTree::with_defaults()), &spec(), 3);
        assert_eq!(m.update_ops, 5_000);
        assert!(m.update_throughput() > 0.0);
    }

    #[test]
    fn render_table_contains_rows_and_headers() {
        let m = measure_median(|| Arc::new(BPlusTree::with_defaults()), &spec(), 1);
        let rows = vec![ResultRow {
            structure: "B+tree".to_string(),
            workload: "Uniform".to_string(),
            measurement: m,
        }];
        let table = render_table("test table", &rows);
        assert!(table.contains("test table"));
        assert!(table.contains("B+tree"));
        assert!(table.contains("updates [M/s]"));
        assert!(table.contains("p50[us]"));
        assert!(table.contains("p99[us]"));
        assert!(table.contains("p999[us]"));
        assert!(table.contains("owned"));
        assert!(table.contains("late"));
        assert!(table.contains("stall[us]"));
        assert!(table.contains("cow"));
        assert!(table.contains("lag"));
        assert!(table.contains("bp"));
        assert!(table.contains("samples"));
    }

    #[test]
    fn speedup_table_is_relative_to_baseline() {
        let fast = Measurement {
            update_ops: 200,
            update_seconds: 1.0,
            ..Measurement::default()
        };
        let slow = Measurement {
            update_ops: 100,
            update_seconds: 1.0,
            ..Measurement::default()
        };
        let rows = vec![
            ResultRow {
                structure: "Baseline".to_string(),
                workload: "Uniform".to_string(),
                measurement: slow,
            },
            ResultRow {
                structure: "Batch".to_string(),
                workload: "Uniform".to_string(),
                measurement: fast,
            },
        ];
        let table = render_speedup_table("fig4", &rows, "Baseline");
        assert!(table.contains("2.00x"));
        assert!(table.contains("1.00x"));
    }
}
