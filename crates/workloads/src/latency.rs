//! Fixed-bucket latency histograms for the workload harness.
//!
//! The drivers time a sample of the update operations (one in
//! [`LATENCY_SAMPLE_INTERVAL`]) and fold the nanosecond latency
//! into a [`LatencyHistogram`] with power-of-two bucket bounds: bucket `i`
//! counts latencies in `[2^(i-1), 2^i)` ns (bucket 0 counts `0..1` ns). 64
//! buckets therefore cover the whole `u64` nanosecond range with a fixed 512
//! bytes per histogram and an O(1) branch-free record path — no external
//! histogram crate needed, and merging per-thread histograms is a plain
//! element-wise add.
//!
//! Percentiles come back as the *upper bound* of the bucket containing the
//! requested quantile, i.e. they are conservative within a factor of two —
//! plenty for the tail-latency comparisons the harness reports (p50/p99/p999
//! next to throughput in the result tables), where the interesting effects
//! are orders of magnitude (a shard split pausing writers, a `t_delay` batch
//! flush) rather than percent-level.

/// Number of power-of-two buckets (covers the full `u64` ns range).
pub const LATENCY_BUCKETS: usize = 64;

/// The drivers time one in this many update operations rather than every
/// one: two `Instant::now()` calls per operation (~tens of ns) would be a
/// measurable tax on structures whose operations themselves cost ~100 ns,
/// deflating the throughput figures the harness exists to reproduce and
/// compressing cross-structure speed-up ratios. Sampling keeps the clock
/// overhead below ~1% while a 1M-op run still collects ~125k samples —
/// plenty to resolve p999.
pub const LATENCY_SAMPLE_INTERVAL: usize = 8;

/// Resolves the latency sampling interval: the `PMA_LAT_SAMPLE` environment
/// variable when set to a positive integer (e.g. `1` to time every
/// operation, trading throughput fidelity for full latency coverage),
/// [`LATENCY_SAMPLE_INTERVAL`] otherwise.
pub fn sample_interval_from_env() -> usize {
    std::env::var("PMA_LAT_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(LATENCY_SAMPLE_INTERVAL)
}

/// A fixed-size histogram of operation latencies in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation that took `nanos` nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let idx = (u64::BITS - nanos.leading_zeros()) as usize;
        self.buckets[idx.min(LATENCY_BUCKETS - 1)] += 1;
        self.count += 1;
    }

    /// Adds every sample of `other` into `self` (used to combine the
    /// per-thread histograms of a multi-threaded run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The latency (in ns, upper bucket bound) below which a fraction `q` of
    /// the samples fall; `None` when the histogram is empty or `q` is outside
    /// `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        // Rank of the percentile sample, 1-based, clamped into the population.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // Upper bound of bucket idx: 2^idx - 1 (bucket 0 holds 0 ns).
                return Some(if idx == 0 { 0 } else { (1u64 << idx) - 1 });
            }
        }
        None
    }

    /// Median latency in ns.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 99th-percentile latency in ns.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency in ns.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Renders a percentile for a result table: microseconds with the bucket
    /// resolution made explicit, or `-` for an empty histogram.
    pub fn render_us(&self, q: f64) -> String {
        match self.percentile(q) {
            Some(ns) => format!("{:.1}", ns as f64 / 1_000.0),
            None => "-".to_string(),
        }
    }
}

impl pma_common::obs::MetricSource for LatencyHistogram {
    /// Exports the histogram through the observability layer: the non-empty
    /// buckets as `(upper_bound_ns, count)` pairs plus the total sample
    /// count, so harness latencies render in the same Prometheus/JSON
    /// exposition as the structure counters.
    fn observe(&self, out: &mut dyn pma_common::obs::Observe) {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(idx, &count)| {
                // Upper bound of bucket idx: 2^idx - 1 (bucket 0 holds 0 ns).
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                (upper, count)
            })
            .collect();
        out.histogram("latency_ns", &buckets, self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_common::obs::{MetricSource, Observations};

    #[test]
    fn observes_as_histogram_metric() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(100);
        h.record(100);
        let mut sink = Observations::new();
        h.observe(&mut sink);
        let snapshot = sink.into_snapshot();
        let rendered = pma_common::obs::metrics::render_prometheus(&snapshot);
        assert!(rendered.contains("latency_ns"), "{rendered}");
        assert!(
            pma_common::obs::metrics::validate_exposition(&rendered).unwrap() > 0,
            "{rendered}"
        );
    }

    #[test]
    fn record_places_samples_in_power_of_two_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1_000);
        h.record(u64::MAX);
        assert_eq!(h.count(), 5);
        assert!(!h.is_empty());
        // 0 lands in bucket 0, 1 in bucket 1, 2 in bucket 2, 1000 in bucket
        // 10, u64::MAX in the last bucket.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = LatencyHistogram::new();
        // 90 fast ops (~100 ns), 9 medium (~10 us), 1 slow (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let p50 = h.p50().unwrap();
        assert!(p50 < 256, "p50 = {p50}");
        let p99 = h.p99().unwrap();
        assert!((4_096..32_768).contains(&p99), "p99 = {p99}");
        let p999 = h.p999().unwrap();
        assert!(p999 >= 524_288, "p999 = {p999}");
        // Monotone in q.
        assert!(h.percentile(0.1).unwrap() <= p50);
        assert!(p50 <= p99 && p99 <= p999);
        // With 100 samples the p999 rank is already the maximum.
        assert_eq!(h.percentile(1.0), h.p999());
    }

    #[test]
    fn empty_and_invalid_quantiles_yield_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.render_us(0.5), "-");
        let mut h = h;
        h.record(5);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.5), None);
        assert_eq!(h.percentile(-0.5), None);
        assert!(h.p50().is_some());
    }

    #[test]
    fn merge_combines_per_thread_histograms() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(100);
        }
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 11);
        assert!(a.p50().unwrap() < 256);
        assert!(a.percentile(1.0).unwrap() >= 524_288);
    }

    #[test]
    fn render_us_formats_microseconds() {
        let mut h = LatencyHistogram::new();
        h.record(2_000);
        // 2000 ns lands in the [1024, 2048) bucket, upper bound 2047 ns.
        assert_eq!(h.render_us(0.5), "2.0");
    }
}
