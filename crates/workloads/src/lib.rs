//! Workload generators, multi-threaded drivers and the measurement harness
//! used to reproduce the paper's evaluation (section 4).
//!
//! * [`distribution`] — uniform and Zipfian key streams over `beta = 2^27`.
//! * [`spec`] — experiment descriptions (thread splits, update patterns).
//! * [`drivers`] — the measured insert-only and mixed-update phases with
//!   concurrent scanner threads, plus the cold bulk-ingestion driver
//!   ([`drivers::run_bulk_ingest`]) comparing `from_sorted` loads against
//!   looped inserts.
//! * [`open_loop`] — arrival-rate-scheduled (open-loop) driver with deficit
//!   accounting, per-op sojourn times and a saturation sweep that ramps the
//!   offered load until deadline misses exceed a threshold.
//! * [`latency`] — fixed-bucket per-operation latency histograms; the
//!   drivers report p50/p99/p999 update latency next to throughput.
//! * [`harness`] — median-of-repeats measurement and paper-style tables.
//! * [`factory`] — registry-backed construction of every structure of the
//!   evaluation by spec string (see [`pma_common::registry`]).
//! * [`urlcorpus`] — deterministic shared-prefix-heavy URL key corpus and
//!   the byte-keyed ingest driver reporting bytes/key next to throughput.

#![warn(missing_docs)]

pub mod distribution;
pub mod drivers;
pub mod factory;
pub mod harness;
pub mod latency;
pub mod open_loop;
pub mod spec;
pub mod urlcorpus;

pub use distribution::{Distribution, KeyGenerator, DEFAULT_KEY_RANGE};
pub use drivers::{
    bulk_ingest_items, preload, run_bulk_ingest, run_insert_only, run_mixed_updates, run_workload,
    BulkIngestMeasurement, Measurement,
};
pub use factory::{
    ablation_leaf_specs, ablation_segment_specs, build, build_bytes, build_bytes_loaded,
    build_loaded, build_or_panic, byte_label, ensure_builtin_backends, figure3_specs,
    figure4_specs, label,
};
pub use harness::{measure_median, render_speedup_table, render_table, ResultRow};
pub use latency::{LatencyHistogram, LATENCY_SAMPLE_INTERVAL};
pub use open_loop::{
    run_open_loop, saturation_sweep, OpenLoopMeasurement, OpenLoopSpec, SweepConfig,
};
pub use spec::{ThreadSplit, UpdatePattern, WorkloadSpec};
pub use urlcorpus::{run_byte_ingest, ByteIngestMeasurement, UrlCorpus};
