//! Open-loop workload driver: operations *arrive* on a fixed schedule
//! regardless of how fast the structure completes them, the way requests
//! arrive at a service. Closed-loop drivers ([`crate::drivers`]) hide
//! queueing — a slow structure simply makes its clients issue less — while
//! an open-loop driver keeps offering load at the configured rate, so
//! queueing delay shows up where it belongs: in the measured **sojourn
//! time** (queue wait + service) of each operation.
//!
//! * Each producer thread derives a deterministic arrival schedule from the
//!   offered rate (`arrival_i = start + i * interval`). When a producer
//!   falls behind schedule it issues back-to-back without sleeping until it
//!   catches up (*deficit accounting*); the worst backlog is reported as
//!   [`OpenLoopMeasurement::max_deficit_ops`].
//! * One in [`OpenLoopSpec::read_fraction`]⁻¹ operations is a synchronous
//!   `get` probe. Through a queueing front-end (the engine's thread-per-core
//!   router) a probe travels the same FIFO as the writes before it, so its
//!   completion time measures the full sojourn — queue wait plus service —
//!   not just the service time. Sojourns land in a [`LatencyHistogram`]
//!   (p50/p99/p999) and are checked against [`OpenLoopSpec::deadline`].
//! * Writes go through [`ConcurrentMap::try_insert`], so admission-controlled
//!   structures (shed-mode routers) surface overload as typed sheds instead
//!   of unbounded queueing; sheds are counted, never retried (open-loop
//!   arrivals don't wait around).
//! * [`saturation_sweep`] ramps the offered rate until the deadline-miss or
//!   shed fraction exceeds a threshold — the classic open-loop load/latency
//!   knee — returning one measurement per step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pma_common::obs::{MetricsSeries, Observations};
use pma_common::ConcurrentMap;

use crate::distribution::{Distribution, KeyGenerator};
use crate::latency::LatencyHistogram;

/// How often the sampler thread snapshots `observe_metrics` (shared with the
/// closed-loop drivers via `PMA_METRICS_INTERVAL_MS`).
fn metrics_interval() -> Duration {
    let ms = std::env::var("PMA_METRICS_INTERVAL_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(25);
    Duration::from_millis(ms)
}

/// One open-loop experiment cell: an arrival schedule plus the op mix.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Total offered arrival rate in operations per second, split evenly
    /// across the producers.
    pub offered_rate: f64,
    /// How long arrivals are scheduled for. When the structure keeps up the
    /// run finishes in about this long; when it saturates the run overshoots
    /// (producers are still draining their schedules), which is itself a
    /// saturation signal.
    pub duration: Duration,
    /// Producer threads, each with its own deterministic schedule.
    pub producers: usize,
    /// Key domain of the generated operations.
    pub key_range: u64,
    /// Key distribution of the generated operations.
    pub distribution: Distribution,
    /// RNG seed (each producer derives its own sub-seed).
    pub seed: u64,
    /// Sojourn budget per probe; a probe completing later than
    /// `arrival + deadline` counts as a deadline miss.
    pub deadline: Duration,
    /// Fraction of operations issued as synchronous `get` probes (the
    /// sojourn measurement); the rest are `try_insert` writes. Clamped to
    /// `[0, 1]`; probes are spaced deterministically (every ⌈1/f⌉-th op).
    pub read_fraction: f64,
    /// Elements loaded (evenly over the key range) before the measured
    /// phase, so probes hit a populated structure.
    pub preload: usize,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        Self {
            offered_rate: 100_000.0,
            duration: Duration::from_millis(500),
            producers: 2,
            key_range: 1 << 20,
            distribution: Distribution::Uniform,
            seed: 0xC0FFEE,
            deadline: Duration::from_millis(1),
            read_fraction: 0.1,
            preload: 10_000,
        }
    }
}

impl OpenLoopSpec {
    /// Nanoseconds between consecutive arrivals of one producer.
    pub fn interval_ns(&self) -> u64 {
        let rate = self.offered_rate.max(1.0);
        let per_producer = rate / self.producers.max(1) as f64;
        ((1e9 / per_producer) as u64).max(1)
    }

    /// Operations each producer schedules (rounded up so the total offered
    /// load is at least `offered_rate * duration`).
    pub fn ops_per_producer(&self) -> u64 {
        let total = self.offered_rate.max(1.0) * self.duration.as_secs_f64();
        (total / self.producers.max(1) as f64).ceil().max(1.0) as u64
    }

    /// Every how many ops a producer issues a sojourn probe (`0` = never,
    /// when `read_fraction` is not positive).
    pub fn probe_every(&self) -> u64 {
        if self.read_fraction <= 0.0 {
            0
        } else {
            (1.0 / self.read_fraction.min(1.0)).round().max(1.0) as u64
        }
    }
}

/// Result of one open-loop run at one offered rate.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopMeasurement {
    /// The offered rate this cell ran at (ops/s).
    pub offered_rate: f64,
    /// Operations issued (probes + writes, shed or not).
    pub issued_ops: u64,
    /// Writes rejected by the structure's admission control
    /// ([`ConcurrentMap::try_insert`] returning an error).
    pub shed_ops: u64,
    /// Probes whose sojourn exceeded the deadline.
    pub deadline_misses: u64,
    /// Wall-clock seconds from first scheduled arrival to the last issued
    /// operation (exceeds the spec duration when saturated).
    pub elapsed_seconds: f64,
    /// Worst per-producer backlog observed at an issue point: how many
    /// arrivals the producer was behind schedule (0 = always on time).
    pub max_deficit_ops: u64,
    /// Probe sojourns (queue wait + service), nanoseconds; `count()` is the
    /// number of probes.
    pub sojourn: LatencyHistogram,
    /// Elements stored after the run (after a flush).
    pub final_len: usize,
    /// Metrics time series sampled while the run was live (`None` when the
    /// structure exposes no metrics) — for routed structures this carries
    /// `ingress_depth` over time, from which a queue-depth p99 is derived.
    pub metrics: Option<MetricsSeries>,
    /// Combining counters after the run (`late_replays` must be zero).
    pub combining: Option<pma_common::CombiningStats>,
    /// Structural-maintenance counters after the run.
    pub maintenance: Option<pma_common::MaintenanceStats>,
}

impl OpenLoopMeasurement {
    /// Operations that reached the structure (issued minus shed).
    pub fn completed_ops(&self) -> u64 {
        self.issued_ops - self.shed_ops
    }

    /// Completed operations per wall-clock second.
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.completed_ops() as f64 / self.elapsed_seconds
        }
    }

    /// Fraction of probes that missed the deadline (0 when nothing probed).
    pub fn miss_fraction(&self) -> f64 {
        let probes = self.sojourn.count();
        if probes == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / probes as f64
        }
    }

    /// Fraction of issued operations that were shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.issued_ops == 0 {
            0.0
        } else {
            self.shed_ops as f64 / self.issued_ops as f64
        }
    }
}

/// Runs one open-loop cell against `map`: preloads, then lets the producers
/// walk their arrival schedules to the end (issuing back-to-back while
/// behind), while a sampler thread snapshots the structure's metrics.
pub fn run_open_loop<M: ConcurrentMap + ?Sized>(
    map: &M,
    spec: &OpenLoopSpec,
) -> OpenLoopMeasurement {
    // Preload outside the measured phase so probes hit a populated structure.
    let preload_n = spec.preload as u64;
    let stride = (spec.key_range / preload_n.max(1)).max(1);
    for i in 0..preload_n {
        let key = (i * stride) as pma_common::Key;
        map.insert(key, key);
    }
    map.flush();

    let per_producer = spec.ops_per_producer();
    let interval_ns = spec.interval_ns();
    let probe_every = spec.probe_every();
    let deadline_ns = spec.deadline.as_nanos() as u64;

    let stop = AtomicBool::new(false);
    let stop_ref = &stop;
    let mut measurement = OpenLoopMeasurement {
        offered_rate: spec.offered_rate,
        ..OpenLoopMeasurement::default()
    };

    let run_start = Instant::now();
    std::thread::scope(|scope| {
        // Same sampler as the closed-loop drivers: queue depth and shed
        // counters over time, with a final at-stop snapshot.
        let sampler = scope.spawn(move || {
            let interval = metrics_interval();
            let sampler_start = Instant::now();
            let mut series = MetricsSeries::new();
            loop {
                let stopped = stop_ref.load(Ordering::Relaxed);
                let mut sink = Observations::new();
                map.observe_metrics(&mut sink);
                series.push(
                    sampler_start.elapsed().as_millis() as u64,
                    sink.into_snapshot(),
                );
                if stopped {
                    return series;
                }
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline && !stop_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2).min(interval));
                }
            }
        });

        let producers: Vec<_> = (0..spec.producers.max(1))
            .map(|tid| {
                scope.spawn(move || {
                    let mut generator = KeyGenerator::new(
                        spec.distribution,
                        spec.key_range,
                        spec.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut sojourn = LatencyHistogram::new();
                    let (mut shed, mut misses, mut max_deficit) = (0u64, 0u64, 0u64);
                    let start = Instant::now();
                    for i in 0..per_producer {
                        let scheduled_ns = i * interval_ns;
                        let now_ns = start.elapsed().as_nanos() as u64;
                        if now_ns < scheduled_ns {
                            std::thread::sleep(Duration::from_nanos(scheduled_ns - now_ns));
                        } else {
                            // Behind schedule: issue back-to-back (no sleep)
                            // and account the deficit in arrivals.
                            max_deficit = max_deficit.max((now_ns - scheduled_ns) / interval_ns);
                        }
                        let key = generator.next_key();
                        if probe_every > 0 && i % probe_every == 0 {
                            let _ = map.get(key);
                            // Sojourn is measured from the *scheduled*
                            // arrival, not the issue instant: time spent
                            // catching up a deficit is queueing delay too.
                            let done_ns = start.elapsed().as_nanos() as u64;
                            let sojourn_ns = done_ns.saturating_sub(scheduled_ns);
                            sojourn.record(sojourn_ns);
                            if sojourn_ns > deadline_ns {
                                misses += 1;
                            }
                        } else if map.try_insert(key, key).is_err() {
                            shed += 1;
                        }
                    }
                    (per_producer, shed, misses, max_deficit, sojourn)
                })
            })
            .collect();

        for handle in producers {
            let (issued, shed, misses, deficit, sojourn) =
                handle.join().expect("a producer thread panicked");
            measurement.issued_ops += issued;
            measurement.shed_ops += shed;
            measurement.deadline_misses += misses;
            measurement.max_deficit_ops = measurement.max_deficit_ops.max(deficit);
            measurement.sojourn.merge(&sojourn);
        }
        measurement.elapsed_seconds = run_start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);

        let series = sampler.join().expect("the metrics sampler panicked");
        if series.points.iter().any(|p| !p.snapshot.metrics.is_empty()) {
            measurement.metrics = Some(series);
        }
    });

    map.flush();
    measurement.final_len = map.len();
    measurement.combining = map.combining_stats();
    measurement.maintenance = map.maintenance_stats();
    if let Some(combining) = measurement.combining {
        debug_assert_eq!(
            combining.late_replays, 0,
            "an operation was applied after its owning window was released"
        );
    }
    measurement
}

/// How a [`saturation_sweep`] ramps the offered load.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Offered rate of the first step (ops/s).
    pub start_rate: f64,
    /// Multiplicative ramp per step (clamped to at least 1.01).
    pub growth: f64,
    /// Upper bound on sweep steps, saturated or not.
    pub max_steps: usize,
    /// The sweep stops after the first step whose deadline-miss fraction
    /// *or* shed fraction exceeds this threshold.
    pub miss_threshold: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            start_rate: 50_000.0,
            growth: 2.0,
            max_steps: 6,
            miss_threshold: 0.05,
        }
    }
}

/// Ramps the offered rate from [`SweepConfig::start_rate`] by
/// [`SweepConfig::growth`] per step — building a **fresh** structure per step
/// via `build`, so steps don't inherit each other's backlog — until a step
/// saturates (miss or shed fraction above the threshold) or `max_steps` is
/// reached. Returns one measurement per step; the last one is the knee when
/// the sweep stopped early.
pub fn saturation_sweep(
    build: impl Fn() -> std::sync::Arc<dyn ConcurrentMap>,
    base: &OpenLoopSpec,
    config: &SweepConfig,
) -> Vec<OpenLoopMeasurement> {
    let mut rate = config.start_rate.max(1.0);
    let mut out = Vec::new();
    for _ in 0..config.max_steps.max(1) {
        let spec = OpenLoopSpec {
            offered_rate: rate,
            ..base.clone()
        };
        let map = build();
        let measurement = run_open_loop(map.as_ref(), &spec);
        let saturated = measurement.miss_fraction() > config.miss_threshold
            || measurement.shed_fraction() > config.miss_threshold;
        out.push(measurement);
        if saturated {
            break;
        }
        rate *= config.growth.max(1.01);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_baselines::btree::BPlusTree;

    fn tiny_spec() -> OpenLoopSpec {
        OpenLoopSpec {
            offered_rate: 40_000.0,
            duration: Duration::from_millis(100),
            producers: 2,
            key_range: 1 << 16,
            preload: 1_000,
            read_fraction: 0.25,
            deadline: Duration::from_secs(5),
            ..OpenLoopSpec::default()
        }
    }

    #[test]
    fn schedule_arithmetic_covers_the_offered_load() {
        let spec = tiny_spec();
        // 40k ops/s over 100ms split across 2 producers = 2000 each.
        assert_eq!(spec.ops_per_producer(), 2_000);
        // Per-producer rate 20k/s = 50µs between arrivals.
        assert_eq!(spec.interval_ns(), 50_000);
        // read_fraction 0.25 probes every 4th op.
        assert_eq!(spec.probe_every(), 4);
        // No probes when the mix is write-only.
        assert_eq!(
            OpenLoopSpec {
                read_fraction: 0.0,
                ..spec
            }
            .probe_every(),
            0
        );
    }

    #[test]
    fn open_loop_issues_the_full_schedule() {
        let map = BPlusTree::with_defaults();
        let spec = tiny_spec();
        let m = run_open_loop(&map, &spec);
        assert_eq!(m.issued_ops, 4_000);
        // The btree never sheds, and with a 5s deadline nothing misses.
        assert_eq!(m.shed_ops, 0);
        assert_eq!(m.deadline_misses, 0);
        assert_eq!(m.completed_ops(), 4_000);
        // Every 4th op per producer was probed.
        assert_eq!(m.sojourn.count(), 1_000);
        assert!(m.miss_fraction() == 0.0 && m.shed_fraction() == 0.0);
        assert!(m.elapsed_seconds > 0.0 && m.achieved_rate() > 0.0);
        // Preload plus whatever the writes added (duplicates collapse).
        assert!(m.final_len >= 1_000);
        assert_eq!(map.len(), m.final_len);
        let p50 = m.sojourn.p50().expect("probes were recorded");
        let p999 = m.sojourn.p999().expect("probes were recorded");
        assert!(p50 <= p999, "p50 {p50} > p999 {p999}");
    }

    #[test]
    fn zero_deadline_counts_every_probe_as_missed() {
        let map = BPlusTree::with_defaults();
        let spec = OpenLoopSpec {
            deadline: Duration::ZERO,
            duration: Duration::from_millis(20),
            ..tiny_spec()
        };
        let m = run_open_loop(&map, &spec);
        assert!(m.sojourn.count() > 0);
        assert_eq!(m.deadline_misses, m.sojourn.count());
        assert!((m.miss_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sweep_stops_at_the_saturation_knee() {
        let base = OpenLoopSpec {
            duration: Duration::from_millis(20),
            ..tiny_spec()
        };
        // An impossible deadline saturates the very first step.
        let saturated = saturation_sweep(
            || std::sync::Arc::new(BPlusTree::with_defaults()),
            &OpenLoopSpec {
                deadline: Duration::ZERO,
                ..base.clone()
            },
            &SweepConfig {
                max_steps: 4,
                miss_threshold: 0.05,
                ..SweepConfig::default()
            },
        );
        assert_eq!(saturated.len(), 1);
        assert!(saturated[0].miss_fraction() > 0.05);

        // A generous deadline never saturates: the sweep runs all steps and
        // the offered rate ramps multiplicatively.
        let relaxed = saturation_sweep(
            || std::sync::Arc::new(BPlusTree::with_defaults()),
            &base,
            &SweepConfig {
                start_rate: 10_000.0,
                growth: 2.0,
                max_steps: 3,
                miss_threshold: 1.1,
            },
        );
        assert_eq!(relaxed.len(), 3);
        assert!((relaxed[0].offered_rate - 10_000.0).abs() < 1e-6);
        assert!((relaxed[2].offered_rate - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn fractions_handle_empty_runs() {
        let m = OpenLoopMeasurement::default();
        assert_eq!(m.miss_fraction(), 0.0);
        assert_eq!(m.shed_fraction(), 0.0);
        assert_eq!(m.achieved_rate(), 0.0);
    }
}
