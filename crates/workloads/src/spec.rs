//! Workload specifications: which threads do what, over which distribution,
//! mirroring the experimental setup of the paper's section 4.

use crate::distribution::{Distribution, DEFAULT_KEY_RANGE};

/// How the available threads are partitioned between updaters and scanners
/// (the a/b/c and d/e/f columns of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSplit {
    /// Threads performing insertions/deletions.
    pub update_threads: usize,
    /// Threads continuously scanning all elements in sorted order.
    pub scan_threads: usize,
}

impl ThreadSplit {
    /// The three splits used by Figure 3 for a given total thread count:
    /// all-updates, 3/4 updates, and half updates.
    pub fn paper_splits(total_threads: usize) -> Vec<ThreadSplit> {
        let total = total_threads.max(2);
        vec![
            ThreadSplit {
                update_threads: total,
                scan_threads: 0,
            },
            ThreadSplit {
                update_threads: total - total / 4,
                scan_threads: total / 4,
            },
            ThreadSplit {
                update_threads: total / 2,
                scan_threads: total - total / 2,
            },
        ]
    }

    /// Total number of threads.
    pub fn total(&self) -> usize {
        self.update_threads + self.scan_threads
    }

    /// Label such as "12u/4s".
    pub fn label(&self) -> String {
        format!("{}u/{}s", self.update_threads, self.scan_threads)
    }
}

/// Which update pattern the updater threads execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePattern {
    /// Start from an empty structure and insert `total_elements` keys
    /// (Figure 3 a–c).
    InsertOnly,
    /// Preload `total_elements` keys, then repeatedly insert a batch of
    /// `batch_fraction` of the initial size and delete it again
    /// (Figure 3 d–f).
    MixedUpdates,
}

/// Full description of one experiment cell.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Key distribution of the updater threads.
    pub distribution: Distribution,
    /// Key domain (`beta` in the paper, default `2^27`).
    pub key_range: u64,
    /// Number of update operations (insert-only) or preloaded elements
    /// (mixed).
    pub total_elements: usize,
    /// For `MixedUpdates`: the fraction of the preloaded size inserted and
    /// then deleted per round (the paper uses 1.5%).
    pub batch_fraction: f64,
    /// For `MixedUpdates`: number of insert+delete rounds.
    pub rounds: usize,
    /// Thread partitioning.
    pub threads: ThreadSplit,
    /// Update pattern.
    pub pattern: UpdatePattern,
    /// RNG seed (each thread derives its own sub-seed).
    pub seed: u64,
    /// The drivers time one in this many update operations (`1` times every
    /// operation). Defaults to `PMA_LAT_SAMPLE` when set, else
    /// [`crate::latency::LATENCY_SAMPLE_INTERVAL`].
    pub lat_sample_interval: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            distribution: Distribution::Uniform,
            key_range: DEFAULT_KEY_RANGE,
            total_elements: 1_000_000,
            batch_fraction: 0.015,
            rounds: 2,
            threads: ThreadSplit {
                update_threads: 4,
                scan_threads: 0,
            },
            pattern: UpdatePattern::InsertOnly,
            seed: 0xC0FFEE,
            lat_sample_interval: crate::latency::sample_interval_from_env(),
        }
    }
}

impl WorkloadSpec {
    /// Number of operations per updater thread (rounded up so every element
    /// is covered).
    pub fn ops_per_update_thread(&self) -> usize {
        self.total_elements
            .div_ceil(self.threads.update_threads.max(1))
    }

    /// Short human-readable description.
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {}",
            self.distribution.label(),
            self.threads.label(),
            match self.pattern {
                UpdatePattern::InsertOnly => "insert-only",
                UpdatePattern::MixedUpdates => "mixed",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_splits_for_sixteen_threads() {
        let splits = ThreadSplit::paper_splits(16);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].update_threads, 16);
        assert_eq!(splits[0].scan_threads, 0);
        assert_eq!(splits[1].update_threads, 12);
        assert_eq!(splits[1].scan_threads, 4);
        assert_eq!(splits[2].update_threads, 8);
        assert_eq!(splits[2].scan_threads, 8);
        assert!(splits.iter().all(|s| s.total() == 16));
    }

    #[test]
    fn paper_splits_for_small_machines() {
        let splits = ThreadSplit::paper_splits(4);
        assert!(splits.iter().all(|s| s.total() == 4));
        assert!(splits.iter().all(|s| s.update_threads >= 1));
        let splits = ThreadSplit::paper_splits(1);
        assert!(splits.iter().all(|s| s.total() == 2));
    }

    #[test]
    fn ops_per_thread_covers_all_elements() {
        let spec = WorkloadSpec {
            total_elements: 10,
            threads: ThreadSplit {
                update_threads: 3,
                scan_threads: 0,
            },
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.ops_per_update_thread(), 4);
        assert!(spec.ops_per_update_thread() * 3 >= 10);
    }

    #[test]
    fn labels_are_descriptive() {
        let spec = WorkloadSpec::default();
        assert!(spec.label().contains("Uniform"));
        assert!(spec.label().contains("insert-only"));
        assert_eq!(
            ThreadSplit {
                update_threads: 12,
                scan_threads: 4
            }
            .label(),
            "12u/4s"
        );
    }
}
