//! Deterministic URL-corpus generator and the byte-keyed ingest driver.
//!
//! Variable-length keys change *which* costs dominate: with u64 keys every
//! slot is 8 bytes and layout economics reduce to fill factors, while a URL
//! corpus is long (tens of bytes), wildly shared-prefix-heavy (scheme +
//! host + path stem repeat across millions of keys) and non-uniform in
//! length. [`UrlCorpus`] produces exactly that shape, deterministically:
//!
//! * a small pool of hosts (Zipf-ish popularity via square-rank skew), so
//!   host prefixes repeat heavily;
//! * per-host path stems (`/users/`, `/posts/`, ...) shared across many
//!   keys;
//! * a numeric tail that makes every key unique.
//!
//! [`run_byte_ingest`] is the measurement driver behind the bench-smoke
//! URL-corpus cell: bulk-load the corpus, probe random members, run prefix
//! scans over a popular host, and report throughput next to the structure's
//! **bytes/key** (from [`ConcurrentByteMap::memory_stats`]) — the column
//! `docs/INTERNALS.md`'s layout-economics table is built from.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pma_common::bytemap::ConcurrentByteMap;
use pma_common::Value;

/// Host pool of the corpus: a handful of "big" sites plus a tail, so the
/// generated keys share long prefixes at realistic (skewed) frequencies.
const HOSTS: &[&str] = &[
    "https://example.com",
    "https://api.example.com",
    "https://cdn.example.org",
    "https://forum.rust-lang.org",
    "https://news.ycombinator.com",
    "https://en.wikipedia.org",
    "https://github.com",
    "https://docs.rs",
];

/// Path stems shared by many keys under one host.
const STEMS: &[&str] = &[
    "/users/", "/posts/", "/items/", "/t/", "/wiki/", "/repos/", "/v1/", "/img/",
];

/// Deterministic generator of a shared-prefix-heavy URL corpus.
#[derive(Debug, Clone)]
pub struct UrlCorpus {
    rng: SmallRng,
}

impl UrlCorpus {
    /// Creates a generator; equal seeds yield byte-identical corpora.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws one URL key. Host popularity is skewed (square-rank), so a few
    /// hosts dominate and their prefixes compress well.
    pub fn next_key(&mut self) -> Vec<u8> {
        // Squaring a uniform rank pushes mass towards index 0: the first
        // host receives ~35% of keys, the last ~4%.
        let r: f64 = self.rng.gen_range(0.0..1.0);
        let host = HOSTS[((r * r) * HOSTS.len() as f64) as usize % HOSTS.len()];
        let stem = STEMS[self.rng.gen_range(0..STEMS.len())];
        let id: u64 = self.rng.gen_range(0..100_000_000);
        let mut key = Vec::with_capacity(host.len() + stem.len() + 8);
        key.extend_from_slice(host.as_bytes());
        key.extend_from_slice(stem.as_bytes());
        key.extend_from_slice(format!("{id:08}").as_bytes());
        key
    }

    /// Generates `count` distinct `(key, value)` pairs, key-sorted and ready
    /// for a native bulk load. Values are a function of the key tail so
    /// agreement checks can recompute them.
    pub fn sorted_corpus(&mut self, count: usize) -> Vec<(Vec<u8>, Value)> {
        let mut items: Vec<(Vec<u8>, Value)> = Vec::with_capacity(count + count / 8);
        while items.len() < count + count / 8 {
            let key = self.next_key();
            let value = key.len() as Value;
            items.push((key, value));
        }
        items.sort();
        items.dedup_by(|a, b| a.0 == b.0);
        items.truncate(count);
        items
    }

    /// The most popular host's prefix — the natural target for the driver's
    /// prefix scans.
    pub fn hot_prefix() -> &'static [u8] {
        HOSTS[0].as_bytes()
    }
}

/// What [`run_byte_ingest`] measured.
#[derive(Debug, Clone, Copy)]
pub struct ByteIngestMeasurement {
    /// Corpus size actually loaded (distinct keys).
    pub entries: usize,
    /// Bulk-load rate in million keys/second.
    pub load_mps: f64,
    /// Point-probe rate in million gets/second (all hits).
    pub probe_mps: f64,
    /// Prefix-scan rate in million entries visited/second.
    pub prefix_scan_eps: f64,
    /// Resident heap bytes per key (0.0 when the backend cannot report
    /// memory stats).
    pub bytes_per_key: f64,
}

/// Loads a `count`-key URL corpus into `map` through its native bulk path,
/// then measures point probes and hot-host prefix scans. Deterministic for a
/// given `(seed, count, probes)`.
pub fn run_byte_ingest(
    map: &Arc<dyn ConcurrentByteMap>,
    seed: u64,
    count: usize,
    probes: usize,
) -> ByteIngestMeasurement {
    let mut corpus = UrlCorpus::new(seed);
    let items = corpus.sorted_corpus(count);

    let start = Instant::now();
    map.insert_batch(&items);
    map.flush();
    let load_secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(map.len(), items.len(), "bulk load lost keys");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let start = Instant::now();
    let mut hits = 0usize;
    for _ in 0..probes {
        let (key, value) = &items[rng.gen_range(0..items.len())];
        if map.get(key) == Some(*value) {
            hits += 1;
        }
    }
    let probe_secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(hits, probes, "probe misses on loaded members");

    let start = Instant::now();
    let stats = map.prefix_stats(UrlCorpus::hot_prefix());
    let scan_secs = start.elapsed().as_secs_f64().max(1e-9);
    assert!(stats.count > 0, "hot host prefix matched nothing");

    let bytes_per_key = map.memory_stats().map(|m| m.bytes_per_key()).unwrap_or(0.0);

    ByteIngestMeasurement {
        entries: items.len(),
        load_mps: items.len() as f64 / load_secs / 1e6,
        probe_mps: probes as f64 / probe_secs / 1e6,
        prefix_scan_eps: stats.count as f64 / scan_secs / 1e6,
        bytes_per_key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory;

    #[test]
    fn corpus_is_deterministic_and_sorted() {
        let a = UrlCorpus::new(7).sorted_corpus(2_000);
        let b = UrlCorpus::new(7).sorted_corpus(2_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_000);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly sorted");
        let c = UrlCorpus::new(8).sorted_corpus(2_000);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn corpus_is_shared_prefix_heavy() {
        let items = UrlCorpus::new(1).sorted_corpus(5_000);
        let hot = items
            .iter()
            .filter(|(k, _)| k.starts_with(UrlCorpus::hot_prefix()))
            .count();
        // The skew must concentrate a large share on the hottest host.
        assert!(hot > items.len() / 5, "hot host got {hot}/5000");
        // Average key length is URL-like: tens of bytes, not 8.
        let total: usize = items.iter().map(|(k, _)| k.len()).sum();
        assert!(total / items.len() > 25, "keys too short to be URLs");
    }

    #[test]
    fn ingest_driver_reports_consistent_numbers() {
        for spec in ["bpma:64", "bbtree", "bsharded:4:bpma:64"] {
            let map = factory::build_bytes(spec).unwrap();
            let m = run_byte_ingest(&map, 42, 3_000, 500);
            assert_eq!(m.entries, 3_000, "{spec}");
            assert!(m.load_mps > 0.0 && m.probe_mps > 0.0, "{spec}");
            assert!(m.prefix_scan_eps > 0.0, "{spec}");
            assert!(
                m.bytes_per_key > 8.0,
                "{spec}: URL corpus cannot fit in {} bytes/key",
                m.bytes_per_key
            );
        }
    }
}
