//! Bulk loading: build a concurrent PMA pre-populated with one million
//! sorted pairs in a single presized pass (zero rebalances), verify the
//! ordered scan, then keep using the loaded structure under mixed updates.
//!
//! ```text
//! cargo run --release --example bulk_load
//! ```

use std::time::Instant;

use rma_concurrent::common::ConcurrentMap;
use rma_concurrent::core::{ConcurrentPma, PmaParams};
use rma_concurrent::workloads::build_loaded;

const N: i64 = 1_000_000;

fn main() {
    // ---------------------------------------------------------------
    // 1. Load 1M sorted pairs through the presized bulk constructor.
    // ---------------------------------------------------------------
    let items: Vec<(i64, i64)> = (0..N).map(|k| (k * 3, -k)).collect();

    let start = Instant::now();
    let pma = ConcurrentPma::from_sorted(PmaParams::default(), &items).expect("sorted input");
    let bulk = start.elapsed();

    let stats = pma.stats();
    println!(
        "bulk-loaded {} pairs in {:.3} s ({:.1} M pairs/s): {} gates, capacity {}, density {:.2}",
        pma.len(),
        bulk.as_secs_f64(),
        N as f64 / bulk.as_secs_f64() / 1.0e6,
        pma.num_gates(),
        pma.capacity(),
        pma.len() as f64 / pma.capacity() as f64,
    );
    assert_eq!(
        stats.total_rebalances(),
        0,
        "a bulk load never rebalances (local {}, global {}, resizes {})",
        stats.local_rebalances,
        stats.global_rebalances,
        stats.resizes
    );
    assert_eq!(stats.bulk_loaded_keys, N as u64);

    // ---------------------------------------------------------------
    // 2. Verify the load with an ordered scan (count + checksums).
    // ---------------------------------------------------------------
    let scan = pma.scan_all();
    assert_eq!(scan.count, N as u64);
    assert_eq!(scan.key_sum, (0..N).map(|k| k as i128 * 3).sum::<i128>());
    assert_eq!(scan.value_sum, -(0..N).map(|k| k as i128).sum::<i128>());
    println!(
        "ordered scan verified: {} elements, checksums match",
        scan.count
    );

    // ---------------------------------------------------------------
    // 3. The loaded array is a normal concurrent PMA: run mixed updates
    //    and concurrent scans against it.
    // ---------------------------------------------------------------
    std::thread::scope(|scope| {
        for tid in 0..3i64 {
            let pma = &pma;
            scope.spawn(move || {
                for i in 0..50_000i64 {
                    let key = (i * 3 + 1) * (tid + 1) % (3 * N);
                    pma.insert(key, key);
                    if i % 4 == 0 {
                        pma.remove(key);
                    }
                }
            });
        }
        let pma = &pma;
        scope.spawn(move || {
            for _ in 0..3 {
                let stats = pma.scan_all();
                println!("  concurrent scan observed {} elements", stats.count);
            }
        });
    });
    pma.flush();
    println!(
        "after mixed updates: {} elements, stats: {:?}",
        pma.len(),
        pma.stats()
    );

    // ---------------------------------------------------------------
    // 4. Compare against the cold-ingestion baseline (looped inserts) and
    //    show the registry route: every backend spec is bulk-loadable.
    // ---------------------------------------------------------------
    let baseline = ConcurrentPma::with_defaults();
    let start = Instant::now();
    for &(k, v) in &items {
        baseline.insert(k, v);
    }
    baseline.flush();
    let looped = start.elapsed();
    println!(
        "looped insert of the same pairs: {:.3} s -> bulk load is {:.1}x faster",
        looped.as_secs_f64(),
        looped.as_secs_f64() / bulk.as_secs_f64()
    );

    for spec in ["pma-batch:100", "btree:8k", "bwtree"] {
        let start = Instant::now();
        let map = build_loaded(spec, &items).expect("registered backend");
        println!(
            "  Registry::build_loaded(\"{spec}\"): {} elements in {:.3} s",
            map.len(),
            start.elapsed().as_secs_f64()
        );
    }
    println!("bulk_load example finished successfully");
}
