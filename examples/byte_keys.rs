//! Variable-length byte keys: the byte-backend registry table, first-class
//! prefix scans, and the bytes/key layout economics that
//! `docs/INTERNALS.md` records in detail.
//!
//! ```text
//! cargo run --release --example byte_keys
//! ```

use rma_concurrent::workloads::{
    build_bytes, build_bytes_loaded, ensure_builtin_backends, UrlCorpus,
};

fn main() {
    ensure_builtin_backends();

    // ---------------------------------------------------------------
    // 1. Byte-keyed maps are built by spec string from the registry's byte
    //    table, exactly like the u64 backends from the u64 table.
    // ---------------------------------------------------------------
    let map = build_bytes("bpma:128").expect("registered byte backend");
    map.insert(b"user:alice", 1);
    map.insert(b"user:bob", 2);
    map.insert(b"session:9f2e", 3);
    map.insert(b"user:carol", 4);

    // First-class prefix scans: `prefix(p)` visits exactly the half-open
    // interval [p, prefix_upper_bound(p)) — no client-side filtering.
    let mut users = Vec::new();
    map.prefix(b"user:", &mut |key, value| {
        users.push((String::from_utf8_lossy(key).into_owned(), value));
    });
    println!("prefix scan over `user:` -> {users:?}");
    assert_eq!(users.len(), 3);

    // ---------------------------------------------------------------
    // 2. Layout economics on a realistic shared-prefix-heavy corpus: the
    //    prefix-compressed byte PMA vs the boxed-key BTreeMap baseline.
    // ---------------------------------------------------------------
    let items = UrlCorpus::new(42).sorted_corpus(50_000);
    let raw_key_bytes: usize = items.iter().map(|(k, _)| k.len()).sum();
    println!(
        "\nURL corpus: {} keys, {:.1} raw key bytes/key",
        items.len(),
        raw_key_bytes as f64 / items.len() as f64
    );
    for spec in ["bpma:128", "bbtree", "bsharded:4:bpma:128"] {
        let map = build_bytes_loaded(spec, &items).expect("bulk load");
        let hot = map.prefix_stats(UrlCorpus::hot_prefix());
        let mem = map.memory_stats().expect("byte backends report memory");
        println!(
            "  {spec:<22} bytes/key {:6.1}   hot-host prefix holds {} keys",
            mem.bytes_per_key(),
            hot.count
        );
    }
    println!("byte_keys example finished successfully");
}
