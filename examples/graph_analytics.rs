//! Dynamic graph analytics on a PMA-backed CRS graph (paper section 6):
//! concurrent edge insertions from a synthetic social-network stream while
//! analytics (BFS, PageRank, triangle counting) run on the same graph.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use rma_concurrent::graph::{
    bfs, directed_triangles, pagerank, preferential_attachment, DynamicGraph,
};

fn main() {
    let num_vertices = 20_000u32;
    let edges_per_vertex = 8;
    println!("generating a scale-free edge stream ({num_vertices} vertices)...");
    let stream = preferential_attachment(num_vertices, edges_per_vertex, 42);
    println!("  {} edges generated", stream.edges.len());

    // `add_edge` upserts, so the ingestion target is the number of *distinct*
    // edges in the stream (scale-free streams repeat hub edges frequently).
    let distinct_edges = stream
        .edges
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .len();

    let graph = DynamicGraph::new();
    let stop = AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|scope| {
        // Four writer threads ingest the edge stream concurrently.
        let chunks: Vec<&[(u32, u32)]> = stream
            .edges
            .chunks(stream.edges.len().div_ceil(4))
            .collect();
        for chunk in chunks {
            let graph = &graph;
            scope.spawn(move || {
                for &(src, dst) in chunk {
                    graph.add_edge(src, dst, 1).expect("edge insertion");
                }
            });
        }
        // An analytics thread repeatedly runs BFS from the hub while the
        // graph is still changing (the paper's "analytics on a constantly
        // changing graph" scenario).
        let graph = &graph;
        let stop = &stop;
        scope.spawn(move || {
            let mut runs = 0;
            while !stop.load(Ordering::Relaxed) {
                let reached = bfs(graph, 0).len();
                runs += 1;
                if runs % 5 == 0 {
                    println!("  live BFS #{runs}: reached {reached} vertices so far");
                }
            }
        });
        // Wait for the writers (they are the first 4 spawned threads); the
        // scope joins everything, so just signal the analytics thread once
        // the writers are done by watching the distinct-edge count.
        while graph.num_edges() < distinct_edges {
            graph.flush();
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    });
    graph.flush();

    let ingest_secs = start.elapsed().as_secs_f64();
    println!(
        "ingested {} edges in {:.2}s ({:.2} M edges/s)",
        graph.num_edges(),
        ingest_secs,
        graph.num_edges() as f64 / ingest_secs / 1.0e6
    );

    // Post-ingestion analytics on the now-stable graph.
    let distances = bfs(&graph, 0);
    println!("BFS from vertex 0 reaches {} vertices", distances.len());

    let pr = pagerank(&graph, 10, 0.85);
    let mut top: Vec<(u32, f64)> = pr.into_iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-5 PageRank vertices: {:?}", &top[..5.min(top.len())]);

    let triangles = directed_triangles(&graph);
    println!("directed triangles: {triangles}");

    let stats = graph.storage_stats();
    println!(
        "edge-array stats: {} local rebalances, {} global rebalances, {} resizes",
        stats.local_rebalances, stats.global_rebalances, stats.resizes
    );
}
