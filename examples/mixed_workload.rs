//! Concurrent reads and updates under skew: compares the PMA's update modes
//! (synchronous, one-by-one, batch) and a tree baseline on the same skewed
//! workload — a miniature of the paper's Figure 4 experiment.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use rma_concurrent::workloads::{
    measure_median, render_speedup_table, Distribution, ResultRow, StructureKind, ThreadSplit,
    UpdatePattern, WorkloadSpec,
};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let spec_for = |distribution: Distribution| WorkloadSpec {
        distribution,
        key_range: 1 << 24,
        total_elements: 400_000,
        threads: ThreadSplit {
            update_threads: threads - threads / 4,
            scan_threads: threads / 4,
        },
        pattern: UpdatePattern::InsertOnly,
        ..WorkloadSpec::default()
    };

    let kinds = [
        StructureKind::PmaSynchronous,
        StructureKind::PmaOneByOne,
        StructureKind::PmaBatch(100),
        StructureKind::ArtBTree,
    ];

    let mut rows = Vec::new();
    for distribution in [
        Distribution::Uniform,
        Distribution::Zipf { alpha: 1.0 },
        Distribution::Zipf { alpha: 2.0 },
    ] {
        for kind in kinds {
            let spec = spec_for(distribution);
            let measurement = measure_median(|| kind.build(), &spec, 1);
            println!(
                "{:<16} {:<12} {:>8.2} M updates/s, {:>7} elements stored",
                kind.label(),
                distribution.label(),
                measurement.update_throughput() / 1.0e6,
                measurement.final_len
            );
            rows.push(ResultRow {
                structure: kind.label(),
                workload: distribution.label(),
                measurement,
            });
        }
    }
    println!(
        "{}",
        render_speedup_table(
            "Asynchronous PMA updates under skew",
            &rows,
            "PMA Baseline"
        )
    );
}
