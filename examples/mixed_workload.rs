//! Concurrent reads and updates under skew: compares the PMA's update modes
//! (synchronous, one-by-one, batch) and a tree baseline on the same skewed
//! workload — a miniature of the paper's Figure 4 experiment.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```
//!
//! With `PMA_TRACE=1` the run also writes `trace.json`, a Chrome-trace file
//! of the PMA's internal phases (gate waits, redistributes, resizes, shard
//! splits) — open it at <https://ui.perfetto.dev> or `chrome://tracing`.
//! `PMA_TRACE_OUT` overrides the output path.

use rma_concurrent::workloads::{
    build_or_panic, label, measure_median, render_speedup_table, Distribution, ResultRow,
    ThreadSplit, UpdatePattern, WorkloadSpec,
};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let spec_for = |distribution: Distribution| WorkloadSpec {
        distribution,
        key_range: 1 << 24,
        total_elements: 400_000,
        threads: ThreadSplit {
            update_threads: threads - threads / 4,
            scan_threads: threads / 4,
        },
        pattern: UpdatePattern::InsertOnly,
        ..WorkloadSpec::default()
    };

    // Structures are selected by registry spec string: swap any of these for
    // another registered backend (see `Registry::global().entries()`).
    let structures = ["pma-sync", "pma-1by1", "pma-batch:100", "btree"];

    let mut rows = Vec::new();
    for distribution in [
        Distribution::Uniform,
        Distribution::Zipf { alpha: 1.0 },
        Distribution::Zipf { alpha: 2.0 },
    ] {
        for structure in structures {
            let spec = spec_for(distribution);
            let measurement = measure_median(|| build_or_panic(structure), &spec, 1);
            println!(
                "{:<16} {:<12} {:>8.2} M updates/s, {:>7} elements stored",
                label(structure),
                distribution.label(),
                measurement.update_throughput() / 1.0e6,
                measurement.final_len
            );
            rows.push(ResultRow {
                structure: label(structure),
                workload: distribution.label(),
                measurement,
            });
        }
    }
    println!(
        "{}",
        render_speedup_table("Asynchronous PMA updates under skew", &rows, "PMA Baseline")
    );

    // With PMA_TRACE=1, dump everything the event rings captured as a
    // Chrome-trace file for Perfetto / chrome://tracing.
    let trace_out = std::env::var("PMA_TRACE_OUT").unwrap_or_else(|_| "trace.json".to_string());
    if let Some(n) = rma_concurrent::obs::trace::write_if_enabled(&trace_out) {
        println!("wrote {n} trace events to {trace_out} (open in ui.perfetto.dev)");
    }
}
