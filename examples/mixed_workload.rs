//! Concurrent reads and updates under skew: compares the PMA's update modes
//! (synchronous, one-by-one, batch) and a tree baseline on the same skewed
//! workload — a miniature of the paper's Figure 4 experiment.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use rma_concurrent::workloads::{
    build_or_panic, label, measure_median, render_speedup_table, Distribution, ResultRow,
    ThreadSplit, UpdatePattern, WorkloadSpec,
};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let spec_for = |distribution: Distribution| WorkloadSpec {
        distribution,
        key_range: 1 << 24,
        total_elements: 400_000,
        threads: ThreadSplit {
            update_threads: threads - threads / 4,
            scan_threads: threads / 4,
        },
        pattern: UpdatePattern::InsertOnly,
        ..WorkloadSpec::default()
    };

    // Structures are selected by registry spec string: swap any of these for
    // another registered backend (see `Registry::global().entries()`).
    let structures = ["pma-sync", "pma-1by1", "pma-batch:100", "btree"];

    let mut rows = Vec::new();
    for distribution in [
        Distribution::Uniform,
        Distribution::Zipf { alpha: 1.0 },
        Distribution::Zipf { alpha: 2.0 },
    ] {
        for structure in structures {
            let spec = spec_for(distribution);
            let measurement = measure_median(|| build_or_panic(structure), &spec, 1);
            println!(
                "{:<16} {:<12} {:>8.2} M updates/s, {:>7} elements stored",
                label(structure),
                distribution.label(),
                measurement.update_throughput() / 1.0e6,
                measurement.final_len
            );
            rows.push(ResultRow {
                structure: label(structure),
                workload: distribution.label(),
                measurement,
            });
        }
    }
    println!(
        "{}",
        render_speedup_table("Asynchronous PMA updates under skew", &rows, "PMA Baseline")
    );
}
