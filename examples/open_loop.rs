//! Tour of the thread-per-core service architecture: build a
//! `cores:<n>:<inner-spec>` router through the registry, ship point ops and
//! batch runs to its pinned workers, exercise the shed-mode admission
//! control, then drive it with the open-loop harness — arrival-scheduled
//! load, probe sojourns, and a saturation sweep ramping the offered rate.
//!
//! Run with `cargo run --release --example open_loop`.

use std::time::Duration;

use rma_concurrent::common::{ConcurrentMap, PmaError, Registry};
use rma_concurrent::engine::{CoreRouter, CoreRouterConfig, OverloadPolicy};
use rma_concurrent::workloads::{
    build_or_panic, ensure_builtin_backends, label, run_open_loop, saturation_sweep, OpenLoopSpec,
    SweepConfig,
};

fn main() {
    ensure_builtin_backends();

    // --- 1. Registry construction: clients route by fence key, workers own
    //        disjoint key ranges and apply through the inner structure. ---
    let spec = "cores:2:sharded:4:pma-batch:100";
    println!("== {} ({spec}) ==", label(spec));
    let map = build_or_panic(spec);
    for k in 0..50_000i64 {
        map.insert(k * 3, k);
    }
    let run: Vec<(i64, i64)> = (50_000..60_000).map(|k| (k * 3, k)).collect();
    map.insert_batch(&run); // whole runs ship to workers in one hop each
    map.flush();
    assert_eq!(map.get(30), Some(10)); // same-key FIFO: reads see prior writes
    println!(
        "shipped 50k point inserts + one 10k run; len = {} across 2 workers",
        map.len()
    );
    drop(map);

    // --- 2. Shed-mode admission control: a saturated ingress queue returns
    //        a typed error instead of queueing without bound. ---
    println!("\n== overload shedding ==");
    let inner = Registry::global()
        .build("sharded:2:pma-batch:1")
        .expect("inner engine");
    let router = CoreRouter::new(
        CoreRouterConfig {
            workers: 1,
            queue_depth: 4,
            policy: OverloadPolicy::Shed,
            pin: true,
        },
        inner,
    )
    .expect("router config");
    let (mut accepted, mut shed) = (0u64, 0u64);
    for k in 0..50_000i64 {
        match router.try_insert(k, k) {
            Ok(()) => accepted += 1,
            Err(PmaError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    router.flush();
    let stats = router.stats();
    println!(
        "depth-4 queue under a tight loop: {accepted} accepted, {shed} shed \
         (typed), {} pinned worker(s), len = {}",
        stats.pinned_workers,
        router.len()
    );
    assert_eq!(accepted + shed, 50_000);
    assert_eq!(router.len() as u64, accepted);
    drop(router);

    // --- 3. The open-loop harness: arrivals on a schedule, sojourn = queue
    //        wait + service measured by sync probes through the FIFOs. ---
    println!("\n== open-loop run at a fixed offered rate ==");
    let base = OpenLoopSpec {
        offered_rate: 100_000.0,
        duration: Duration::from_millis(250),
        producers: 2,
        key_range: 1 << 20,
        deadline: Duration::from_millis(5),
        read_fraction: 0.1,
        preload: 20_000,
        ..OpenLoopSpec::default()
    };
    let map = build_or_panic(spec);
    let m = run_open_loop(map.as_ref(), &base);
    println!(
        "offered {:.0} ops/s, achieved {:.0} ops/s ({} issued, {} shed, \
         max deficit {} arrivals)",
        m.offered_rate,
        m.achieved_rate(),
        m.issued_ops,
        m.shed_ops,
        m.max_deficit_ops
    );
    println!(
        "probe sojourns (µs): p50 {} / p99 {} / p999 {} — {} of {} probes \
         missed the 5ms deadline",
        m.sojourn.render_us(0.50),
        m.sojourn.render_us(0.99),
        m.sojourn.render_us(0.999),
        m.deadline_misses,
        m.sojourn.count()
    );
    drop(map);

    // --- 4. Saturation sweep: ramp the offered rate until deadline misses
    //        (or sheds) cross the threshold — the load/latency knee. ---
    println!("\n== saturation sweep ==");
    let points = saturation_sweep(
        || build_or_panic(spec),
        &OpenLoopSpec {
            duration: Duration::from_millis(150),
            ..base
        },
        &SweepConfig {
            start_rate: 50_000.0,
            growth: 4.0,
            max_steps: 3,
            miss_threshold: 0.5,
        },
    );
    for p in &points {
        println!(
            "  offered {:>9.0} ops/s: achieved {:>9.0}, miss {:>5.1}%, \
             shed {:>5.1}%, sojourn p999 {} µs",
            p.offered_rate,
            p.achieved_rate(),
            p.miss_fraction() * 100.0,
            p.shed_fraction() * 100.0,
            p.sojourn.render_us(0.999),
        );
    }
    let knee = points.last().expect("at least one step");
    if knee.miss_fraction() > 0.5 || knee.shed_fraction() > 0.5 {
        println!(
            "saturated at {:.0} offered ops/s after {} step(s)",
            knee.offered_rate,
            points.len()
        );
    } else {
        println!(
            "no saturation within {} step(s) (up to {:.0} ops/s offered)",
            points.len(),
            knee.offered_rate
        );
    }

    // The linearizability invariant holds through the shipping layer.
    let combining = knee.combining.expect("sharded inner has combining");
    assert_eq!(combining.late_replays, 0);
    println!("late_replays = 0 across the sweep — shipping preserved the owned-window invariant");
}
