//! Quickstart: the sequential PMA, the concurrent PMA, and the backend
//! registry that makes every structure addressable by string.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rma_concurrent::common::{ConcurrentMap, Registry};
use rma_concurrent::core::{ConcurrentPma, PackedMemoryArray, PmaParams};
use rma_concurrent::workloads::ensure_builtin_backends;

fn main() {
    // ---------------------------------------------------------------
    // 1. The sequential PMA: a sorted array with gaps (paper section 2).
    // ---------------------------------------------------------------
    let mut pma = PackedMemoryArray::<i64, i64>::with_defaults();
    for k in (0..1_000i64).rev() {
        pma.insert(k, k * 10);
    }
    println!(
        "sequential PMA: {} elements in {} slots ({} segments, density {:.2})",
        pma.len(),
        pma.capacity(),
        pma.num_segments(),
        pma.density()
    );
    let first_five: Vec<i64> = pma.iter().take(5).map(|(k, _)| k).collect();
    println!("  first five keys (always sorted): {first_five:?}");
    println!(
        "  range 10..=15 -> {:?}",
        pma.range(10, 15).collect::<Vec<_>>()
    );

    // ---------------------------------------------------------------
    // 2. The concurrent PMA (paper section 3): gates, a static index, a
    //    rebalancer service and asynchronous updates, all behind a simple
    //    thread-safe map API.
    // ---------------------------------------------------------------
    let pma = ConcurrentPma::new(PmaParams::default()).expect("valid parameters");
    // Batch insertion: sorted per-gate runs are merged with one latch
    // acquisition each instead of one routing walk per element.
    let seed: Vec<(i64, i64)> = (0..10_000i64).map(|k| (k * 4 + 3, k)).collect();
    pma.insert_batch(&seed);
    std::thread::scope(|scope| {
        for tid in 0..3i64 {
            let pma = &pma;
            scope.spawn(move || {
                for i in 0..50_000i64 {
                    let key = i * 4 + tid;
                    pma.insert(key, key);
                }
            });
        }
        // A reader scans concurrently with the writers.
        let pma = &pma;
        scope.spawn(move || {
            for _ in 0..5 {
                let stats = pma.scan_all();
                println!("  concurrent scan observed {} elements", stats.count);
            }
        });
    });
    pma.flush();

    println!(
        "concurrent PMA: {} elements across {} gates, capacity {}",
        pma.len(),
        pma.num_gates(),
        pma.capacity()
    );
    let stats = pma.stats();
    println!(
        "  rebalances: {} local, {} global, {} resizes; combined ops: {}",
        stats.local_rebalances, stats.global_rebalances, stats.resizes, stats.combined_ops
    );
    assert_eq!(pma.len(), 160_000);
    assert_eq!(pma.get(400), Some(400));
    // A ranged scan routed through the static index.
    let window = pma.scan_range(1_000, 1_999);
    println!("  scan_range(1000, 2000) -> {} elements", window.count);

    // ---------------------------------------------------------------
    // 3. The backend registry: every structure of the evaluation is
    //    constructible by spec string, and new backends plug in with one
    //    `register` call — no enum edits anywhere.
    // ---------------------------------------------------------------
    ensure_builtin_backends();
    println!("\nregistered backends:");
    for (name, description) in Registry::global().entries() {
        println!("  {name:<12} {description}");
    }
    for spec in ["btree:8k", "pma-batch:50"] {
        let map = Registry::global().build(spec).expect("registered backend");
        map.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
        map.flush();
        println!(
            "  built `{spec}` ({}): scan_range(1, 2) visits {} elements",
            Registry::global().label(spec).unwrap(),
            map.scan_range(1, 2).count
        );
    }
    println!("quickstart finished successfully");
}
