//! Quickstart: the sequential and the concurrent Packed Memory Array.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rma_concurrent::common::ConcurrentMap;
use rma_concurrent::core::{ConcurrentPma, PackedMemoryArray, PmaParams};

fn main() {
    // ---------------------------------------------------------------
    // 1. The sequential PMA: a sorted array with gaps (paper section 2).
    // ---------------------------------------------------------------
    let mut pma = PackedMemoryArray::<i64, i64>::with_defaults();
    for k in (0..1_000i64).rev() {
        pma.insert(k, k * 10);
    }
    println!(
        "sequential PMA: {} elements in {} slots ({} segments, density {:.2})",
        pma.len(),
        pma.capacity(),
        pma.num_segments(),
        pma.density()
    );
    let first_five: Vec<i64> = pma.iter().take(5).map(|(k, _)| k).collect();
    println!("  first five keys (always sorted): {first_five:?}");
    println!("  range 10..=15 -> {:?}", pma.range(10, 15).collect::<Vec<_>>());

    // ---------------------------------------------------------------
    // 2. The concurrent PMA (paper section 3): gates, a static index, a
    //    rebalancer service and asynchronous updates, all behind a simple
    //    thread-safe map API.
    // ---------------------------------------------------------------
    let pma = ConcurrentPma::new(PmaParams::default()).expect("valid parameters");
    std::thread::scope(|scope| {
        for tid in 0..4i64 {
            let pma = &pma;
            scope.spawn(move || {
                for i in 0..50_000i64 {
                    let key = i * 4 + tid;
                    pma.insert(key, key);
                }
            });
        }
        // A reader scans concurrently with the writers.
        let pma = &pma;
        scope.spawn(move || {
            for _ in 0..5 {
                let stats = pma.scan_all();
                println!("  concurrent scan observed {} elements", stats.count);
            }
        });
    });
    pma.flush();

    println!(
        "concurrent PMA: {} elements across {} gates, capacity {}",
        pma.len(),
        pma.num_gates(),
        pma.capacity()
    );
    let stats = pma.stats();
    println!(
        "  rebalances: {} local, {} global, {} resizes; combined ops: {}",
        stats.local_rebalances, stats.global_rebalances, stats.resizes, stats.combined_ops
    );
    assert_eq!(pma.len(), 200_000);
    assert_eq!(pma.get(400), Some(400));
    println!("quickstart finished successfully");
}
