//! Tour of the range-sharded engine: build `sharded:<n>:<inner-spec>` through
//! the registry, bulk-load it with data-driven fences, run point ops and
//! cross-shard ordered scans, then watch a hot shard split and cold shards
//! merge under the load monitor.
//!
//! Run with `cargo run --release --example sharded_engine`.

use std::time::Duration;

use rma_concurrent::common::{ConcurrentMap, Registry};
use rma_concurrent::engine::{ShardedConfig, ShardedMap};
use rma_concurrent::workloads::{build_loaded, ensure_builtin_backends, label};

fn main() {
    ensure_builtin_backends();

    // --- 1. Registry construction: every driver/bench selects it by spec. ---
    let spec = "sharded:4:pma-batch:100";
    println!("== {} ({spec}) ==", label(spec));
    let items: Vec<(i64, i64)> = (0..200_000).map(|k| (k * 3, k)).collect();
    let map = build_loaded(spec, &items).expect("bulk load through the registry");
    println!(
        "bulk-loaded {} elements across 4 shards (fences cut at data percentiles)",
        map.len()
    );

    // Point ops route through the directory in O(log S); ordered scans merge
    // the per-shard streams with global ordering preserved.
    map.insert(-1, -1);
    assert_eq!(map.get(-1), Some(-1));
    assert_eq!(map.get(300_000), Some(100_000));
    let stats = map.scan_all();
    println!(
        "scan_all visited {} elements (key checksum {})",
        stats.count, stats.key_sum
    );
    let ranged = map.scan_range(150_000, 450_000);
    println!(
        "scan_range over a fence-straddling interval: {} elements",
        ranged.count
    );
    drop(map);

    // --- 2. Dynamic shard management on the concrete type. ---
    let config = ShardedConfig {
        shards: 1,
        inner_spec: "pma-batch:1".to_string(),
        split_above: 50_000,
        merge_below: 1_000,
        hysteresis_rounds: 2,
        monitor_interval: Duration::from_millis(5),
        auto_manage: true,
    };
    let map = ShardedMap::new(config, Registry::global()).expect("sharded map");
    println!("\n== dynamic splits/merges ==");
    println!("start: {} shard(s)", map.num_shards());
    for k in 0..200_000i64 {
        map.insert(k, k);
    }
    map.flush();
    // Give the monitor a few rounds to react to the hot shard.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while map.stats().shard_splits == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "after inserting 200k keys: {} shard(s), layout (lo, hi, len):",
        map.num_shards()
    );
    for (lo, hi, len) in map.shard_layout() {
        println!("  [{lo:>20} .. {hi:>20}]  {len} elements");
    }
    for k in 0..200_000i64 {
        map.remove(k);
    }
    map.flush();
    // Fresh deadline: the split wait above may have consumed the first one.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while map.num_shards() > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = map.stats();
    println!(
        "after draining: {} shard(s) — {} splits, {} merges, {} ops routed",
        map.num_shards(),
        stats.shard_splits,
        stats.shard_merges,
        stats.routed_ops
    );
    println!(
        "incremental splits: {} ops captured in delta logs, {} chase rounds, \
         writers stalled {}us total (copy phases ran with writers live)",
        stats.delta_ops,
        stats.chase_rounds,
        stats.split_stall_us()
    );
    assert_eq!(map.len(), 0);

    // --- 3. Hysteresis: load hovering at a threshold does not thrash. ---
    // Drive the monitor by hand (no background thread) and hover the element
    // count around `split_above`: every crossing lapses before the
    // hysteresis window completes, so the monitor never splits and counts
    // the suppressed crossings instead.
    let config = ShardedConfig {
        shards: 1,
        inner_spec: "pma-batch:1".to_string(),
        split_above: 10_000,
        merge_below: 1_000,
        hysteresis_rounds: 3,
        monitor_interval: Duration::ZERO,
        auto_manage: true,
    };
    let map = ShardedMap::new(config, Registry::global()).expect("sharded map");
    println!("\n== hysteresis at the split boundary ==");
    for round in 0..4 {
        for k in 0..11_000i64 {
            map.insert(k, k);
        }
        map.flush();
        map.maintain_once(); // crossing observed, streak = 1 of 3
        for k in 10_000..11_000i64 {
            map.remove(k);
        }
        map.flush();
        map.maintain_once(); // load dipped back: streak resets, thrash averted
        println!(
            "round {round}: {} shard(s), {} splits, {} thrash averted",
            map.num_shards(),
            map.stats().shard_splits,
            map.stats().split_thrash_averted
        );
    }
    let stats = map.stats();
    assert_eq!(stats.shard_splits, 0, "hovering load must not split");
    assert!(stats.split_thrash_averted > 0);
    println!(
        "hovering load: 0 splits, {} crossings suppressed by hysteresis",
        stats.split_thrash_averted
    );
}
