//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! shim provides the subset of the `criterion` API the workspace's benches
//! use: `Criterion`, `BenchmarkGroup` (with `sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`, `bench_function`, `bench_with_input`),
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs one warm-up iteration
//! plus `sample_size` timed iterations and reports the mean wall-clock time
//! per iteration (and throughput when configured) — enough to compare
//! structures in CI and to keep the bench targets honest.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Re-exports `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement types (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement (the criterion default).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortises setup cost. The shim runs every batch with a
/// single input regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation used to report elements or bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher<'a> {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
    _marker: PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = self.samples as u64;
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim just keeps it >= 1 and caps it so
        // CI smoke runs stay quick.
        self.sample_size = n.clamp(1, 1000);
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase beyond
    /// one untimed iteration.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// iterations instead of a wall-clock window.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Reports throughput alongside per-iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
            _marker: PhantomData,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher<'_>) {
        let iters = bencher.iterations.max(1);
        let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
        let mut line = format!("{}/{}: {:>12.3} us/iter", self.name, id, per_iter * 1.0e6);
        if let Some(throughput) = self.throughput {
            let (amount, unit) = match throughput {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0.0 {
                line.push_str(&format!(
                    "  ({:.3} M{unit}/s)",
                    amount as f64 / per_iter / 1.0e6
                ));
            }
        }
        println!("{line}");
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group(name.to_string())
            .bench_function("base", f);
        self
    }
}

/// Declares a function running the listed benchmarks against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| runs += 1)
        });
        group.bench_with_input(BenchmarkId::new("with", 1), &5u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs >= 3, "sample iterations plus warm-up must run");
    }
}
