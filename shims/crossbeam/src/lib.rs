//! Minimal std-backed stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this in-workspace shim
//! provides the subset of `crossbeam::channel` the workspace uses: an
//! unbounded MPMC channel with cloneable senders *and* receivers (std's
//! `mpsc::Receiver` cannot be cloned, which the rebalancer worker pool needs),
//! plus `recv_timeout` with `crossbeam`-compatible error types.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; carries
    /// the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable: every message is
    /// delivered to exactly one receiver (work-queue semantics).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends `value` to the channel. Fails only when every receiver has
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake receivers so they observe the
                // disconnect instead of blocking forever.
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish()
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .cond
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .cond
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_timeout_times_out_then_disconnects() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_receivers_share_the_work_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx1.recv() {
                    got.push(v);
                }
                got
            });
            let b = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = a.join().unwrap();
            all.extend(b.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
