//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this in-workspace shim
//! provides the subset of the `parking_lot` API the workspace uses — `Mutex`,
//! `MutexGuard`, `Condvar` and `RwLock` with guard-returning (non-poisoning)
//! `lock`/`read`/`write` — implemented on top of `std::sync`. Poisoned locks
//! are transparently recovered: the workspace's lock-protected invariants are
//! re-validated by the PMA protocol itself, matching `parking_lot`'s
//! no-poisoning semantics.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Like `parking_lot`, spins briefly before parking: micro-contended
    /// critical sections (the PMA's gate latches are held for tens of
    /// nanoseconds) are then usually acquired without a futex round-trip, and
    /// contenders actually observe intermediate latch states instead of
    /// sleeping through them.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        for _ in 0..64 {
            match self.inner.try_lock() {
                // A panic while holding the guard poisons the std mutex;
                // recover the guard like parking_lot (no poisoning) would.
                Ok(guard) => return MutexGuard { inner: Some(guard) },
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    return MutexGuard {
                        inner: Some(e.into_inner()),
                    }
                }
                Err(std::sync::TryLockError::WouldBlock) => std::hint::spin_loop(),
            }
        }
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard of a [`Mutex`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership of it (std's condvar consumes and returns guards by value).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks the current thread until notified. The guard is atomically
    /// released while waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes a single waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires the lock in shared mode.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the lock in exclusive mode.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let lock = RwLock::new(7);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 14);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 8);
    }
}
