//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! shim provides the subset of the `proptest` API the workspace's tests use:
//! the [`strategy::Strategy`] trait with `prop_map` and weighted unions
//! ([`prop_oneof!`]), [`any`] for the primitive integer types, integer-range
//! strategies, tuple strategies, [`collection::vec`], [`proptest!`] with an
//! optional `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Generation is deterministic per test (seeded from the test name), cases
//! simply re-run the body with fresh random values, and there is no
//! shrinking: a failing case panics with the ordinary `assert!` message, so
//! the reproducing values appear in the assertion output.

#![warn(missing_docs)]

/// Deterministic random generation for strategies.
pub mod test_runner {
    /// Execution configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// The generator handed to strategies (xoshiro256++ seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded deterministically from `name` (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xCBF2_9CE4_8422_2325u64;
            for byte in name.bytes() {
                state = (state ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }

        /// Returns the next random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: bound must be positive");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Object-safe mirror of [`Strategy`], for boxing.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of same-valued strategies (built by `prop_oneof!`).
    pub struct WeightedUnion<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> WeightedUnion<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof!: weights sum to zero");
            Self { arms, total }
        }
    }

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    /// Strategy for [`super::any`], generating the type's full value domain.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "range strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A full-domain strategy for `T` (integers and `bool`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`;
/// weightless arms (`prop_oneof![a, b]`) are uniform.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u32..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_oneof_compose(v in crate::collection::vec(prop_oneof![
            3 => (0i64..10).prop_map(|k| k * 2),
            1 => (0i64..10).prop_map(|k| k * 2 + 1),
        ], 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            let odd = v.iter().filter(|&&k| k % 2 == 1).count();
            prop_assert!(odd <= v.len());
        }
    }

    #[test]
    fn any_and_tuples_generate() {
        let mut rng = crate::test_runner::TestRng::deterministic("tuples");
        let strategy = (any::<i16>(), any::<i64>()).prop_map(|(a, b)| (a as i64, b));
        for _ in 0..100 {
            let (a, _b) = strategy.generate(&mut rng);
            assert!(a >= i16::MIN as i64 && a <= i16::MAX as i64);
        }
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = crate::test_runner::TestRng::deterministic("weights");
        let strategy = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strategy.generate(&mut rng)).count();
        assert!(trues > 800, "trues = {trues}");
    }
}
