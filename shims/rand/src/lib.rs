//! Minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! shim provides the subset of the `rand 0.8` API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (an xoshiro256++
//! generator seeded via SplitMix64, like the real `SmallRng` on 64-bit
//! targets), the [`Rng`] extension trait with `gen_range`/`gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generators are deterministic per seed,
//! which is all the workloads and tests rely on.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                // Widen to u128 so i64/u64 spans cannot overflow.
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), seeded via
    /// SplitMix64 exactly like `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place using `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<i32> = (0..100).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
