//! Umbrella crate re-exporting every component of the `rma-concurrent`
//! workspace: the concurrent Packed Memory Array, the tree baselines, the
//! range-sharded engine, the workload harness and the dynamic graph layer.

pub use pma_baselines as baselines;
pub use pma_common as common;
pub use pma_core as core;
pub use pma_engine as engine;
pub use pma_graph as graph;
pub use pma_obs as obs;
pub use pma_workloads as workloads;
