//! Multi-threaded torture tests for the concurrent PMA: concurrent writers
//! with disjoint and overlapping key ranges, concurrent scanners, skewed
//! writers exercising the combining queues, and deletions driving downsizes.
//! After every run the final contents are validated against the expected set.

use std::sync::Arc;
use std::time::Duration;

use rma_concurrent::common::ConcurrentMap;
use rma_concurrent::core::{ConcurrentPma, PmaParams, UpdateMode};

fn pma(mode: UpdateMode) -> Arc<ConcurrentPma> {
    let params = PmaParams {
        segment_capacity: 16,
        segments_per_gate: 4,
        rebalancer_workers: 2,
        update_mode: mode,
        ..PmaParams::default()
    };
    Arc::new(ConcurrentPma::new(params).unwrap())
}

fn modes() -> Vec<(UpdateMode, &'static str)> {
    vec![
        (UpdateMode::Synchronous, "sync"),
        (UpdateMode::OneByOne, "1by1"),
        (
            UpdateMode::Batch {
                t_delay: Duration::from_millis(5),
            },
            "batch",
        ),
    ]
}

#[test]
fn concurrent_disjoint_writers_and_scanners() {
    for (mode, label) in modes() {
        let map = pma(mode);
        let writers = 8i64;
        let per_writer = 5_000i64;
        std::thread::scope(|scope| {
            for tid in 0..writers {
                let map = map.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let key = tid * 1_000_000 + i;
                        map.insert(key, key);
                    }
                });
            }
            for _ in 0..2 {
                let map = map.clone();
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10 {
                        last = map.scan_all().count;
                    }
                    last
                });
            }
        });
        map.flush();
        assert_eq!(map.len() as i64, writers * per_writer, "mode {label}");
        let stats = map.scan_all();
        assert_eq!(stats.count as i64, writers * per_writer, "mode {label}");
        for tid in 0..writers {
            for i in (0..per_writer).step_by(613) {
                let key = tid * 1_000_000 + i;
                assert_eq!(map.get(key), Some(key), "mode {label}, key {key}");
            }
        }
    }
}

#[test]
fn concurrent_interleaved_writers_collide_on_gates() {
    for (mode, label) in modes() {
        let map = pma(mode);
        let writers = 8i64;
        let per_writer = 4_000i64;
        std::thread::scope(|scope| {
            for tid in 0..writers {
                let map = map.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        // Interleaved keys: all writers hit the same region.
                        let key = i * writers + tid;
                        map.insert(key, key * 2);
                    }
                });
            }
        });
        map.flush();
        let total = writers * per_writer;
        assert_eq!(map.len() as i64, total, "mode {label}");
        let stats = map.scan_all();
        assert_eq!(stats.count as i64, total, "mode {label}");
        assert_eq!(
            stats.value_sum,
            (0..total).map(|k| (k * 2) as i128).sum::<i128>(),
            "mode {label}"
        );
    }
}

#[test]
fn skewed_writers_exercise_combining_queues() {
    // All writers hammer a tiny hot range: in the asynchronous modes most
    // operations should be forwarded through the combining queues.
    for (mode, label) in modes() {
        let map = pma(mode);
        let writers = 8i64;
        let per_writer = 3_000i64;
        std::thread::scope(|scope| {
            for tid in 0..writers {
                let map = map.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        // 75% of operations land on a hot range of 64 keys.
                        let key = if i % 4 != 0 {
                            (i * 31 + tid) % 64
                        } else {
                            10_000 + tid * per_writer + i
                        };
                        map.insert(key, tid);
                    }
                });
            }
        });
        map.flush();
        let stats = map.stats();
        if !matches!(mode, UpdateMode::Synchronous) {
            assert!(
                stats.combined_ops > 0,
                "mode {label}: expected combined operations under skew"
            );
        }
        // Hot keys are present and every cold key of every writer is present.
        for key in 0..64i64 {
            assert!(map.get(key).is_some(), "mode {label}, hot key {key}");
        }
        let scan = map.scan_all();
        assert_eq!(scan.count as usize, map.len(), "mode {label}");
    }
}

#[test]
fn deletions_shrink_the_array() {
    let map = pma(UpdateMode::Synchronous);
    for k in 0..40_000i64 {
        map.insert(k, k);
    }
    let grown_capacity = map.capacity();
    assert!(grown_capacity > 40_000 / 2);
    std::thread::scope(|scope| {
        for tid in 0..4i64 {
            let map = map.clone();
            scope.spawn(move || {
                for k in (tid..40_000).step_by(4) {
                    map.remove(k);
                }
            });
        }
    });
    map.flush();
    assert_eq!(map.len(), 0);
    // Give the rebalancer a chance to process the downsize request.
    for _ in 0..100 {
        if map.capacity() < grown_capacity {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
        map.flush();
    }
    assert!(
        map.capacity() <= grown_capacity,
        "the array must not grow while only deleting"
    );
    assert_eq!(map.scan_all().count, 0);
}

#[test]
fn mixed_concurrent_inserts_deletes_and_gets() {
    for (mode, label) in modes() {
        let map = pma(mode);
        // Preload even keys.
        for k in (0..20_000i64).step_by(2) {
            map.insert(k, k);
        }
        map.flush();
        std::thread::scope(|scope| {
            // Two writers insert odd keys, two writers delete even keys.
            for tid in 0..2i64 {
                let map = map.clone();
                scope.spawn(move || {
                    for k in ((1 + tid * 2)..20_000).step_by(4) {
                        map.insert(k, -k);
                    }
                });
            }
            for tid in 0..2i64 {
                let map = map.clone();
                scope.spawn(move || {
                    for k in ((tid * 2)..20_000).step_by(4) {
                        map.remove(k);
                    }
                });
            }
            // Readers probe constantly.
            for _ in 0..2 {
                let map = map.clone();
                scope.spawn(move || {
                    let mut hits = 0u64;
                    for k in 0..20_000i64 {
                        if map.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                });
            }
        });
        map.flush();
        // Final contents: all odd keys present with negative values, all even
        // keys removed.
        assert_eq!(map.len(), 10_000, "mode {label}");
        for k in (1..20_000i64).step_by(2) {
            assert_eq!(map.get(k), Some(-k), "mode {label}, key {k}");
        }
        for k in (0..20_000i64).step_by(2) {
            assert_eq!(map.get(k), None, "mode {label}, key {k}");
        }
    }
}
