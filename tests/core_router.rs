//! Integration tests for the thread-per-core router: model equivalence under
//! concurrent producers, bounded-ingress backpressure (block and shed
//! policies), and the open-loop overload harness driving the router
//! end-to-end.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use pma_common::{ConcurrentMap, PmaError, Registry};
use rma_concurrent::engine::{CoreRouter, CoreRouterConfig, OverloadPolicy};
use rma_concurrent::workloads::{
    build_or_panic, ensure_builtin_backends, run_open_loop, saturation_sweep, Distribution,
    OpenLoopSpec, SweepConfig,
};

fn router(workers: usize, queue_depth: usize, policy: OverloadPolicy, inner: &str) -> CoreRouter {
    ensure_builtin_backends();
    let inner = Registry::global().build(inner).expect("inner spec builds");
    CoreRouter::new(
        CoreRouterConfig {
            workers,
            queue_depth,
            policy,
            pin: true,
        },
        inner,
    )
    .expect("valid router config")
}

/// 4 producers with disjoint deterministic schedules (point inserts, batch
/// runs, removes, read-your-writes gets) against a 2-worker router over a
/// sharded engine; final contents must equal the `BTreeMap` model and the
/// owned-window invariant must hold through the shipping layer.
#[test]
fn router_matches_model_under_concurrent_producers() {
    const PRODUCERS: i64 = 4;
    const KEYS_PER_PRODUCER: i64 = 6_000;

    let map = router(2, 256, OverloadPolicy::Block, "sharded:2:pma-batch:1");
    std::thread::scope(|scope| {
        for t in 0..PRODUCERS {
            let map = &map;
            scope.spawn(move || {
                // Half the keys as point inserts, half as one shipped run.
                let mid = KEYS_PER_PRODUCER / 2;
                for i in 0..mid {
                    let key = i * PRODUCERS + t;
                    map.insert(key, key.wrapping_mul(2));
                    // Same key routes to the same worker FIFO, so a shipped
                    // Get after a shipped Insert must observe it.
                    if i % 997 == 0 {
                        assert_eq!(map.get(key), Some(key.wrapping_mul(2)), "key {key}");
                    }
                }
                let run: Vec<_> = (mid..KEYS_PER_PRODUCER)
                    .map(|i| {
                        let key = i * PRODUCERS + t;
                        (key, key.wrapping_mul(2))
                    })
                    .collect();
                map.insert_batch(&run);
                // Remove a deterministic slice of this producer's own keys.
                for i in (0..KEYS_PER_PRODUCER).step_by(10) {
                    let key = i * PRODUCERS + t;
                    assert_eq!(map.remove(key), Some(key.wrapping_mul(2)), "key {key}");
                }
            });
        }
    });
    map.flush();

    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    for t in 0..PRODUCERS {
        for i in 0..KEYS_PER_PRODUCER {
            model.insert(i * PRODUCERS + t, (i * PRODUCERS + t).wrapping_mul(2));
        }
        for i in (0..KEYS_PER_PRODUCER).step_by(10) {
            model.remove(&(i * PRODUCERS + t));
        }
    }
    assert_eq!(map.len(), model.len(), "length diverged");
    let stats = map.scan_all();
    assert_eq!(stats.count as usize, model.len());
    assert_eq!(stats.key_sum, model.keys().sum::<i64>() as i128);
    assert_eq!(stats.value_sum, model.values().sum::<i64>() as i128);

    let router_stats = map.stats();
    assert!(router_stats.shipped_ops > 0, "{router_stats:?}");
    assert_eq!(router_stats.shipped_runs, PRODUCERS as u64);
    assert!(router_stats.drained_batches > 0);
    assert!(router_stats.coalesced_inserts > 0);
    assert_eq!(router_stats.ops_shed, 0, "Block policy never sheds");

    // The linearizability invariant holds through the shipping layer.
    let combining = map.combining_stats().expect("sharded inner has combining");
    assert_eq!(combining.late_replays, 0, "{combining:?}");
}

/// Bounded-queue stress: producers blasting a tiny ingress queue (depth 2)
/// under the blocking policy must wait — never lose or duplicate — and the
/// inner structure must come out exactly equal to the model.
#[test]
fn bounded_ingress_blocks_without_losing_or_duplicating_ops() {
    const PRODUCERS: i64 = 4;
    const KEYS_PER_PRODUCER: i64 = 8_000;

    let map = router(1, 2, OverloadPolicy::Block, "sharded:2:pma-batch:1");
    std::thread::scope(|scope| {
        for t in 0..PRODUCERS {
            let map = &map;
            scope.spawn(move || {
                for i in 0..KEYS_PER_PRODUCER {
                    let key = i * PRODUCERS + t;
                    map.insert(key, key);
                }
            });
        }
    });
    map.flush();

    let total = (PRODUCERS * KEYS_PER_PRODUCER) as usize;
    assert_eq!(map.len(), total, "ops were lost or duplicated");
    let stats = map.scan_all();
    assert_eq!(stats.count as usize, total);
    // Sum over the dense range [0, total): no key missing, none doubled.
    let n = total as i128;
    assert_eq!(stats.key_sum, n * (n - 1) / 2);

    let router_stats = map.stats();
    assert_eq!(router_stats.shipped_ops, total as u64);
    assert!(
        router_stats.backpressure_waits > 0,
        "4 producers into a depth-2 queue must have blocked: {router_stats:?}"
    );
    assert_eq!(router_stats.ops_shed, 0);
    let combining = map.combining_stats().expect("sharded inner has combining");
    assert_eq!(combining.late_replays, 0, "{combining:?}");
}

/// Shed policy: a saturated depth-2 queue returns `PmaError::Overloaded`
/// instead of blocking; accepted + shed accounts for every attempt and the
/// structure holds exactly the accepted keys.
#[test]
fn shed_policy_returns_typed_errors_instead_of_blocking() {
    const ATTEMPTS: i64 = 20_000;

    let map = router(1, 2, OverloadPolicy::Shed, "sharded:2:pma-batch:1");
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for key in 0..ATTEMPTS {
        match map.try_insert(key, key) {
            Ok(()) => accepted += 1,
            Err(PmaError::Overloaded { worker, capacity }) => {
                assert_eq!(worker, 0, "single-worker router");
                assert_eq!(capacity, 2);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    map.flush();

    assert_eq!(accepted + shed, ATTEMPTS as u64);
    assert_eq!(map.len() as u64, accepted, "only accepted keys are stored");
    let stats = map.stats();
    assert_eq!(stats.ops_shed, shed);
    assert_eq!(stats.backpressure_waits, 0, "shed mode never blocks");
}

/// On Linux every worker pins successfully (wrapping onto the available
/// cores); elsewhere the gauge honestly reports zero.
#[test]
fn workers_report_their_pinning_outcome() {
    let map = router(3, 64, OverloadPolicy::Block, "pma-batch:1");
    map.insert(1, 1);
    map.flush();
    let stats = map.stats();
    if cfg!(target_os = "linux") {
        assert_eq!(stats.pinned_workers, 3, "{stats:?}");
    } else {
        assert_eq!(stats.pinned_workers, 0, "{stats:?}");
    }
}

/// The open-loop driver runs end-to-end over the registry-built router,
/// measures probe sojourns through the ingress FIFOs, and samples the
/// router's `ingress_depth` gauge into the metrics series.
#[test]
fn open_loop_driver_measures_the_router() {
    ensure_builtin_backends();
    let map = build_or_panic("cores:2:sharded:2:pma-batch:1");
    let spec = OpenLoopSpec {
        offered_rate: 30_000.0,
        duration: Duration::from_millis(150),
        producers: 2,
        key_range: 1 << 16,
        distribution: Distribution::Uniform,
        seed: 7,
        deadline: Duration::from_secs(5),
        read_fraction: 0.2,
        preload: 2_000,
    };
    let m = run_open_loop(map.as_ref(), &spec);

    assert_eq!(m.issued_ops, 4_500);
    assert_eq!(m.shed_ops, 0, "Block policy router never sheds");
    assert_eq!(m.sojourn.count(), 900, "every 5th op is a probe");
    assert_eq!(m.deadline_misses, 0, "5s deadline at 30k/s cannot miss");
    assert!(m.final_len >= 2_000);

    // Sojourn percentiles are ordered and positive.
    let p50 = m.sojourn.p50().expect("probes recorded");
    let p999 = m.sojourn.p999().expect("probes recorded");
    assert!(0 < p50 && p50 <= p999);

    // The sampler saw the router's gauges: a queue-depth p99 is derivable.
    let series = m.metrics.as_ref().expect("router exports metrics");
    assert!(series.percentile("ingress_depth", 0.99).is_some());
    assert!(series
        .last()
        .and_then(|snap| snap.value("router_workers"))
        .is_some_and(|w| (w - 2.0).abs() < f64::EPSILON));

    let combining = m.combining.expect("sharded inner has combining");
    assert_eq!(combining.late_replays, 0, "{combining:?}");
}

/// A miniature saturation sweep over the router: ramps the offered rate,
/// builds a fresh router per step, and stops at `max_steps` when the
/// (generous) thresholds are never exceeded.
#[test]
fn mini_saturation_sweep_over_the_router() {
    ensure_builtin_backends();
    let base = OpenLoopSpec {
        duration: Duration::from_millis(40),
        producers: 2,
        key_range: 1 << 16,
        deadline: Duration::from_secs(5),
        read_fraction: 0.25,
        preload: 500,
        ..OpenLoopSpec::default()
    };
    let points = saturation_sweep(
        || build_or_panic("cores:1:sharded:2:pma-batch:1"),
        &base,
        &SweepConfig {
            start_rate: 5_000.0,
            growth: 2.0,
            max_steps: 2,
            miss_threshold: 1.1,
        },
    );
    assert_eq!(points.len(), 2);
    assert!(points[0].issued_ops > 0 && points[1].issued_ops > 0);
    assert!((points[1].offered_rate / points[0].offered_rate - 2.0).abs() < 1e-6);
    for point in &points {
        assert_eq!(point.shed_ops, 0);
        assert!(point.sojourn.count() > 0);
    }
}

/// Shipping a whole run through `Arc<dyn ConcurrentMap>` exercises the
/// blanket-impl forwarding of `try_insert` and `insert_batch`.
#[test]
fn router_behind_dyn_arc_forwards_admission_control() {
    let map: Arc<dyn ConcurrentMap> = Arc::new(router(1, 2, OverloadPolicy::Shed, "pma-batch:1"));
    let mut saw_shed = false;
    for key in 0..5_000 {
        if map.try_insert(key, key).is_err() {
            saw_shed = true;
        }
    }
    assert!(
        saw_shed,
        "a depth-2 shed queue must reject under a tight loop"
    );
    map.flush();
    assert!(!map.is_empty());
}
