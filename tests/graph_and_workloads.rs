//! Cross-crate integration: the dynamic graph layer over the concurrent PMA
//! together with the workload drivers, and the experiment plumbing end to end
//! (a miniature of the figure-reproduction binaries).

use std::collections::{BTreeMap, BTreeSet};

use rma_concurrent::graph::{bfs, pagerank, preferential_attachment, uniform_random, DynamicGraph};
use rma_concurrent::workloads::{
    build_or_panic, label, measure_median, render_speedup_table, render_table, Distribution,
    ResultRow, ThreadSplit, UpdatePattern, WorkloadSpec,
};

#[test]
fn graph_built_from_generated_stream_matches_adjacency_model() {
    let stream = uniform_random(300, 5_000, 99);
    let graph = DynamicGraph::new();
    let mut model: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &(src, dst) in &stream.edges {
        graph.add_edge(src, dst, 1).unwrap();
        model.entry(src).or_default().insert(dst);
    }
    graph.flush();
    let expected_edges: usize = model.values().map(|s| s.len()).sum();
    assert_eq!(graph.num_edges(), expected_edges);
    for (&src, dsts) in &model {
        let neighbours: Vec<u32> = graph.neighbours(src).into_iter().map(|(d, _)| d).collect();
        let expected: Vec<u32> = dsts.iter().copied().collect();
        assert_eq!(neighbours, expected, "adjacency of vertex {src}");
    }
}

#[test]
fn concurrent_graph_ingestion_with_analytics() {
    let stream = preferential_attachment(3_000, 4, 7);
    let graph = DynamicGraph::new();
    std::thread::scope(|scope| {
        let chunk_size = stream.edges.len().div_ceil(4);
        for chunk in stream.edges.chunks(chunk_size) {
            let graph = &graph;
            scope.spawn(move || {
                for &(src, dst) in chunk {
                    graph.add_edge(src, dst, 1).unwrap();
                }
            });
        }
        // Run analytics while edges are still arriving.
        let graph = &graph;
        scope.spawn(move || {
            for _ in 0..5 {
                let _ = bfs(graph, 0);
            }
        });
    });
    graph.flush();

    // Deduplicate the stream the same way the graph does (upserts).
    let distinct: BTreeSet<(u32, u32)> = stream.edges.iter().copied().collect();
    assert_eq!(graph.num_edges(), distinct.len());

    let ranks = pagerank(&graph, 5, 0.85);
    let total: f64 = ranks.values().sum();
    assert!((total - 1.0).abs() < 1e-6);
    // The earliest vertices accumulate the most attachment, so vertex 0 must
    // rank above the median vertex.
    let mut sorted: Vec<f64> = ranks.values().copied().collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    assert!(ranks[&0] > median);
}

#[test]
fn experiment_pipeline_end_to_end_smoke() {
    // A miniature Figure 3 cell + Figure 4 row, exactly as the binaries do it.
    let spec = WorkloadSpec {
        distribution: Distribution::Zipf { alpha: 1.0 },
        key_range: 1 << 18,
        total_elements: 30_000,
        threads: ThreadSplit {
            update_threads: 3,
            scan_threads: 1,
        },
        pattern: UpdatePattern::InsertOnly,
        ..WorkloadSpec::default()
    };
    let mut rows = Vec::new();
    for structure in ["btree", "pma-sync", "pma-batch:10"] {
        let measurement = measure_median(|| build_or_panic(structure), &spec, 1);
        assert_eq!(measurement.update_ops, 30_000, "{structure}");
        assert!(measurement.update_throughput() > 0.0, "{structure}");
        assert!(measurement.final_len > 0, "{structure}");
        rows.push(ResultRow {
            structure: label(structure),
            workload: spec.distribution.label(),
            measurement,
        });
    }
    let table = render_table("integration smoke", &rows);
    assert!(table.contains("ART/B+tree"));
    assert!(table.contains("PMA Batch 10ms"));
    let speedup = render_speedup_table("integration smoke", &rows, "PMA Baseline");
    assert!(
        speedup.contains("1.00x"),
        "baseline row must be 1.00x:\n{speedup}"
    );
}

#[test]
fn mixed_update_workload_on_the_pma_preserves_contents() {
    let spec = WorkloadSpec {
        distribution: Distribution::Uniform,
        key_range: 1 << 16,
        total_elements: 20_000,
        batch_fraction: 0.02,
        rounds: 3,
        threads: ThreadSplit {
            update_threads: 4,
            scan_threads: 0,
        },
        pattern: UpdatePattern::MixedUpdates,
        ..WorkloadSpec::default()
    };
    let map = build_or_panic("pma-batch:5");
    let m = rma_concurrent::workloads::run_workload(&*map, &spec);
    assert!(m.update_ops > 0);
    // Whatever ended up stored must be observable by both lookups and scans.
    let scan = map.scan_all();
    assert_eq!(scan.count as usize, map.len());
    assert_eq!(map.len(), m.final_len);
}
