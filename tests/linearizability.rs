//! Linearizability regression suite for the combining machinery's former
//! "late replay" windows (ROADMAP windows (a) and (b), closed by the
//! owned-window apply refactor).
//!
//! Window (a): a queued operation whose key was moved to a sibling gate by a
//! rebalance used to be re-applied *after* the service released the gates —
//! so a newer same-key operation applied directly at the sibling could be
//! overwritten by the older replay. The promoted repro: 4 threads each doing
//! insert(k)-then-remove(k) on disjoint keys under `UpdateMode::Batch`
//! (`PmaParams::small()`), which drifted `len` by ±1 within a single run
//! when a rebalance moved the key between the two queue appends.
//!
//! Window (b): an oversized batch run used to travel in the rebalancer's
//! channel, where it could go stale across a resize and be replayed after
//! the new instance was live — overwriting a newer same-key operation that
//! had already been applied directly. The phased variant: each thread
//! `insert_batch`es a large run (forcing span rebuilds and resizes) and then
//! removes every key of the run; a barrier-phased cross-thread flavour
//! removes keys inserted by a *different* thread so the same keys flow
//! through two threads without ever being operated on concurrently.
//!
//! Iteration counts scale with the build profile and are overridable:
//! `LINEARIZABILITY_ITERS` sets the per-test iteration count and
//! `LINEARIZABILITY_SEED` perturbs the key layout (the CI release job runs a
//! seeded matrix of these).

use std::sync::Barrier;
use std::time::Duration;

use pma_core::{ConcurrentPma, PmaParams, UpdateMode};

/// Per-test iteration count: every iteration is a fresh structure and a
/// fresh thread schedule. The release default satisfies the "zero drift
/// across ≥200 release-mode iterations" acceptance bar; the debug default
/// keeps the tier-1 `cargo test` run quick.
fn iters() -> u64 {
    std::env::var("LINEARIZABILITY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 30 } else { 200 })
}

/// Seed perturbing the key layout across CI matrix entries.
fn seed() -> i64 {
    std::env::var("LINEARIZABILITY_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn batch_params() -> PmaParams {
    PmaParams {
        update_mode: UpdateMode::Batch {
            t_delay: Duration::from_millis(1),
        },
        ..PmaParams::small()
    }
}

/// Window (a) repro: 4 threads, disjoint keys, insert(k) then remove(k) per
/// key in small blocks (the block width keeps each pair sequential per key
/// but leaves the rebalancer time to move the key's fence between the two),
/// with every third key kept so the array keeps growing and rebalances keep
/// firing. Zero drift means `len` and the scan agree exactly with the
/// kept-key count. Against the pre-refactor code this fails within a few
/// dozen iterations on every seed: the queued insert becomes a post-release
/// leftover, the remove no-ops at the sibling gate, and the late replay
/// resurrects the key.
#[test]
fn window_a_insert_then_remove_has_zero_len_drift() {
    const THREADS: i64 = 4;
    const KEYS_PER_THREAD: i64 = 400;
    let seed = seed();
    for iteration in 0..iters() {
        let pma = ConcurrentPma::new(batch_params()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pma = &pma;
                scope.spawn(move || {
                    const BLOCK: i64 = 32;
                    let mut i = 0;
                    while i < KEYS_PER_THREAD {
                        let end = (i + BLOCK).min(KEYS_PER_THREAD);
                        for j in i..end {
                            // Disjoint per-thread keys, spread so that every
                            // rebalance window crosses thread ownership.
                            let key = (j * THREADS + t) * 7 + seed;
                            pma.insert(key, key);
                        }
                        for j in i..end {
                            if j % 3 != 0 {
                                // The pair whose second half must never lose
                                // to a late replay of the first.
                                let key = (j * THREADS + t) * 7 + seed;
                                pma.remove(key);
                            }
                        }
                        i = end;
                    }
                });
            }
        });
        pma.flush();
        let kept: u64 = (THREADS * ((KEYS_PER_THREAD + 2) / 3)) as u64;
        let stats = pma.stats();
        assert_eq!(
            pma.len() as u64,
            kept,
            "len drifted at iteration {iteration} (stats: {stats:?})"
        );
        assert_eq!(
            pma.scan_all().count,
            kept,
            "scan disagreed at iteration {iteration}"
        );
        assert_eq!(
            stats.late_replays, 0,
            "an op was salvaged outside its owned window at iteration {iteration}"
        );
    }
}

/// Window (b) repro: per-thread oversized `insert_batch` runs (parked
/// hand-overs, span rebuilds, resizes under contention) followed by removes
/// of the same keys from the same thread. Every key must be gone at the end:
/// with the old channel-carried batches, a run gone stale across a resize
/// was replayed after newer removes and left keys behind.
#[test]
fn window_b_batch_runs_never_resurrect_removed_keys() {
    const THREADS: i64 = 4;
    const RUN_LEN: i64 = 1500;
    let seed = seed();
    for iteration in 0..iters() {
        let pma = ConcurrentPma::new(batch_params()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pma = &pma;
                scope.spawn(move || {
                    let run: Vec<(i64, i64)> = (0..RUN_LEN)
                        .map(|i| ((i * THREADS + t) * 3 + seed, i))
                        .collect();
                    pma.insert_batch(&run);
                    for &(key, _) in &run {
                        pma.remove(key);
                    }
                });
            }
        });
        pma.flush();
        let stats = pma.stats();
        assert_eq!(
            pma.len(),
            0,
            "keys resurrected at iteration {iteration} (stats: {stats:?})"
        );
        assert_eq!(pma.scan_all().count, 0, "scan found ghosts at {iteration}");
        assert_eq!(stats.late_replays, 0);
    }
}

/// Same-key phased variant: thread t inserts a run, a barrier separates the
/// phases, and thread (t + 1) % THREADS removes thread t's keys. The same
/// keys flow through two different threads with a strict happens-before
/// edge between the phases — the insert has *completed* (possibly only as a
/// queue append) before the remove is issued, which is exactly the ordering
/// a late replay used to invert.
#[test]
fn window_b_phased_cross_thread_removes_leave_nothing() {
    const THREADS: i64 = 4;
    const RUN_LEN: i64 = 1200;
    let seed = seed();
    for iteration in 0..iters() {
        let pma = ConcurrentPma::new(batch_params()).unwrap();
        let barrier = Barrier::new(THREADS as usize);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pma = &pma;
                let barrier = &barrier;
                scope.spawn(move || {
                    let own: Vec<(i64, i64)> = (0..RUN_LEN)
                        .map(|i| ((i * THREADS + t) * 5 + seed, i))
                        .collect();
                    pma.insert_batch(&own);
                    barrier.wait();
                    // Remove the *neighbour's* keys: same keys, different
                    // thread, never concurrent with their insertion.
                    let other = (t + 1) % THREADS;
                    for i in 0..RUN_LEN {
                        pma.remove((i * THREADS + other) * 5 + seed);
                    }
                });
            }
        });
        pma.flush();
        assert_eq!(pma.len(), 0, "phased removes lost at iteration {iteration}");
        assert_eq!(pma.scan_all().count, 0);
        assert_eq!(pma.stats().late_replays, 0);
    }
}

/// Snapshot linearization against the windows above: a view frozen between
/// a key's insert and its remove must observe exactly one settled state per
/// key — the key absent, or present with precisely the inserted value —
/// never a value no single settled prefix of the schedule produces. The
/// window (a) schedule is the adversarial one: queued pairs whose key a
/// rebalance moves between the two halves, so a frozen capture racing the
/// owned-window apply would read a half-applied batch if the capture did not
/// latch the gates it copies from.
#[test]
fn frozen_snapshot_observes_single_settled_state_per_key() {
    use pma_common::ConcurrentMap;
    const THREADS: i64 = 4;
    const KEYS_PER_THREAD: i64 = 400;
    let seed = seed();
    for iteration in 0..iters() {
        let pma = ConcurrentPma::new(batch_params()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pma = &pma;
                scope.spawn(move || {
                    const BLOCK: i64 = 32;
                    let mut i = 0;
                    while i < KEYS_PER_THREAD {
                        let end = (i + BLOCK).min(KEYS_PER_THREAD);
                        for j in i..end {
                            let key = (j * THREADS + t) * 7 + seed;
                            pma.insert(key, key);
                        }
                        for j in i..end {
                            if j % 3 != 0 {
                                let key = (j * THREADS + t) * 7 + seed;
                                pma.remove(key);
                            }
                        }
                        i = end;
                    }
                });
            }
            // The snapshot thread freezes mid-storm: every element a view
            // holds must carry the one value the schedule ever writes for
            // its key, and re-reading the same view must be bit-identical.
            let pma = &pma;
            scope.spawn(move || {
                for _ in 0..8 {
                    let frozen = ConcurrentMap::frozen(pma).expect("pma supports frozen views");
                    let contents = frozen.collect_range(i64::MIN, i64::MAX);
                    for &(key, value) in &contents {
                        assert_eq!(
                            value, key,
                            "a frozen view mixed two settled states of key {key}"
                        );
                    }
                    assert_eq!(frozen.len(), contents.len(), "frozen len vs scan");
                    assert_eq!(
                        frozen.collect_range(i64::MIN, i64::MAX),
                        contents,
                        "a frozen view must re-read bit-identically"
                    );
                }
            });
        });
        pma.flush();
        // The settled end state is exactly the kept keys, and the storm kept
        // the owned-window invariant (a late replay is precisely what would
        // let a frozen capture see a mixed batch).
        let kept: u64 = (THREADS * ((KEYS_PER_THREAD + 2) / 3)) as u64;
        assert_eq!(
            pma.len() as u64,
            kept,
            "len drifted at iteration {iteration}"
        );
        assert_eq!(pma.stats().late_replays, 0);
    }
}

/// The refactor's bookkeeping: under queue-heavy contention the service must
/// actually resolve operations ownedly (the `owned_applies` counter moves),
/// and the counters surface through the `ConcurrentMap::combining_stats`
/// hook the harness renders.
#[test]
fn owned_applies_counter_moves_under_contention() {
    use pma_common::ConcurrentMap;
    let pma = ConcurrentPma::new(batch_params()).unwrap();
    let mut total_owned = 0u64;
    // A handful of rounds is plenty: every round funnels 4 threads through
    // the same small array, so delegated drains and claim-time drains fire
    // constantly.
    for round in 0..10i64 {
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let pma = &pma;
                scope.spawn(move || {
                    for i in 0..500i64 {
                        let key = (i * 4 + t) * 11 + round;
                        pma.insert(key, key);
                        if i % 2 == 0 {
                            pma.remove(key);
                        }
                    }
                });
            }
        });
        pma.flush();
        total_owned = pma.stats().owned_applies;
    }
    let combining = pma.combining_stats().expect("the PMA surfaces counters");
    assert_eq!(combining.owned_applies, total_owned);
    assert_eq!(combining.late_replays, 0);
    assert!(
        total_owned > 0,
        "queue-heavy contention must resolve ops through owned-window applies"
    );
}
