//! Tests for the observability layer: the seqlock event rings under
//! concurrent emit/drain (no torn or duplicated events, correct overwrite
//! at wrap) and a property test that `LatencyHistogram` merging is
//! order-independent and lossless.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use rma_concurrent::obs::trace::{self, EventRing};
use rma_concurrent::obs::Category;
use rma_concurrent::workloads::LatencyHistogram;

/// The global enable flag and ring registry are process-wide; tests that
/// touch either must not interleave with each other.
static GLOBAL_TRACE: Mutex<()> = Mutex::new(());

/// Word scrambler used to make every event word a checkable function of its
/// index: a torn slot read would mix words of two different events and fail
/// the recomputation.
fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i >> 7)
}

fn event(i: u64) -> trace::TraceEvent {
    trace::TraceEvent {
        start_raw: i,
        dur_raw: mix(i),
        cat: Category::GateWait,
        tid: 7,
        payload: mix(i ^ 0xdead_beef),
    }
}

fn assert_untorn(e: &trace::TraceEvent) {
    assert_eq!(e.dur_raw, mix(e.start_raw), "torn event: dur word mismatch");
    assert_eq!(
        e.payload,
        mix(e.start_raw ^ 0xdead_beef),
        "torn event: payload word mismatch"
    );
    assert_eq!(e.tid, 7);
}

#[test]
fn ring_overwrites_oldest_at_wrap() {
    let ring = EventRing::with_capacity(64);
    assert_eq!(ring.capacity(), 64);
    // 2.5 laps without draining: only the newest `capacity` events survive.
    for i in 0..160u64 {
        ring.push(&event(i));
    }
    let drained = ring.drain();
    assert_eq!(drained.len(), 64);
    for (offset, e) in drained.iter().enumerate() {
        assert_eq!(e.start_raw, 96 + offset as u64, "oldest survivor wrong");
        assert_untorn(e);
    }
    // A second drain has nothing left to deliver.
    assert!(ring.drain().is_empty());
    // New pushes after a full drain come out exactly once.
    ring.push(&event(160));
    let tail = ring.drain();
    assert_eq!(tail.len(), 1);
    assert_eq!(tail[0].start_raw, 160);
}

#[test]
fn concurrent_drain_sees_no_torn_or_duplicate_events() {
    const TOTAL: u64 = 200_000;
    let ring = Arc::new(EventRing::with_capacity(256));
    let done = Arc::new(AtomicBool::new(false));

    let drained = std::thread::scope(|scope| {
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for i in 0..TOTAL {
                    ring.push(&event(i));
                }
                done.store(true, Ordering::Release);
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut all = Vec::new();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    all.extend(ring.drain());
                    if finished {
                        return all;
                    }
                    std::hint::spin_loop();
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap()
    });

    assert!(!drained.is_empty());
    assert!(drained.len() as u64 <= TOTAL);
    let mut last = None;
    for e in &drained {
        assert_untorn(e);
        assert!(e.start_raw < TOTAL);
        // Drains deliver oldest-first and never repeat an index, so the
        // concatenation of all drain batches is strictly increasing — a
        // duplicate or reordering would break monotonicity.
        if let Some(prev) = last {
            assert!(e.start_raw > prev, "duplicate or reordered event");
        }
        last = Some(e.start_raw);
    }
    // The final drain runs after the producer finished, so the newest event
    // can never be lost to overwrite.
    assert_eq!(last, Some(TOTAL - 1));
}

#[test]
fn multi_thread_emit_drains_lossless_via_global_api() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 512;
    // Tag picked to not collide with payloads other tests might emit.
    const TAG: u64 = 0xab51_0000_0000_0000;

    let _guard = GLOBAL_TRACE.lock().unwrap();
    // Flush anything earlier tests or instrumented code left behind.
    trace::drain_all();
    trace::set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    trace::instant(Category::QueueDepth, TAG | (t << 16) | i);
                }
            });
        }
    });
    trace::set_enabled(false);

    let mut ours: Vec<u64> = trace::drain_all()
        .into_iter()
        .filter(|e| e.payload & 0xffff_0000_0000_0000 == TAG)
        .map(|e| e.payload)
        .collect();
    ours.sort_unstable();
    ours.dedup();
    // Each emitting thread registers its own 8192-slot ring, so 512 events
    // per thread never wrap: every emit must come back exactly once.
    assert_eq!(ours.len() as u64, THREADS * PER_THREAD);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-thread histograms is order-independent and lossless:
    /// any partition of the samples, merged in any order, equals recording
    /// every sample into one histogram directly.
    #[test]
    fn latency_histogram_merge_order_independent_and_lossless(
        parts in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..50),
            0..8,
        ),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();

        let mut reference = LatencyHistogram::new();
        for sample in parts.iter().flatten() {
            reference.record(*sample);
        }
        prop_assert_eq!(reference.count(), total as u64);

        let histograms: Vec<LatencyHistogram> = parts
            .iter()
            .map(|samples| {
                let mut h = LatencyHistogram::new();
                for s in samples {
                    h.record(*s);
                }
                h
            })
            .collect();

        let mut forward = LatencyHistogram::new();
        for h in &histograms {
            forward.merge(h);
        }
        let mut backward = LatencyHistogram::new();
        for h in histograms.iter().rev() {
            backward.merge(h);
        }

        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward, reference);
        prop_assert_eq!(forward.count(), total as u64);
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(forward.percentile(q), reference.percentile(q));
        }
    }
}
