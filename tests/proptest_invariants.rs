//! Property-based tests (proptest) for the core data-structure invariants:
//! the sequential PMA against a `BTreeMap` model, the concurrent PMA against
//! the sequential one, structural invariants after arbitrary operation
//! sequences, and the calibrator-tree threshold algebra.

use std::collections::BTreeMap;

use proptest::prelude::*;

use rma_concurrent::core::calibrator::CalibratorTree;
use rma_concurrent::core::{
    ConcurrentPma, DensityThresholds, PackedMemoryArray, PmaParams, RebalancePolicy, UpdateMode,
};

/// One operation of a generated sequence.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i16, i64),
    Remove(i16),
    Lookup(i16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<i16>(), any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => any::<i16>().prop_map(Op::Remove),
        1 => any::<i16>().prop_map(Op::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sequential PMA behaves exactly like `BTreeMap` and keeps its
    /// structural invariants after every operation sequence.
    #[test]
    fn sequential_pma_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut pma = PackedMemoryArray::<i64, i64>::new(PmaParams::small()).unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(pma.insert(k as i64, v), model.insert(k as i64, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(pma.remove(&(k as i64)), model.remove(&(k as i64)));
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(pma.get(&(k as i64)), model.get(&(k as i64)).copied());
                }
            }
        }
        pma.check_invariants();
        prop_assert_eq!(pma.len(), model.len());
        let collected: Vec<(i64, i64)> = pma.iter().collect();
        let expected: Vec<(i64, i64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(collected, expected);
    }

    /// The adaptive rebalancing policy and the strict thresholds preserve the
    /// same observable behaviour.
    #[test]
    fn sequential_pma_policies_agree(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut traditional = PackedMemoryArray::<i64, i64>::new(PmaParams::small()).unwrap();
        let adaptive_params = PmaParams {
            rebalance_policy: RebalancePolicy::Adaptive,
            thresholds: DensityThresholds::strict(),
            ..PmaParams::small()
        };
        let mut adaptive = PackedMemoryArray::<i64, i64>::new(adaptive_params).unwrap();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    traditional.insert(k as i64, v);
                    adaptive.insert(k as i64, v);
                }
                Op::Remove(k) => {
                    traditional.remove(&(k as i64));
                    adaptive.remove(&(k as i64));
                }
                Op::Lookup(_) => {}
            }
        }
        traditional.check_invariants();
        adaptive.check_invariants();
        prop_assert_eq!(traditional.len(), adaptive.len());
        prop_assert_eq!(traditional.to_vec(), adaptive.to_vec());
    }

    /// The concurrent PMA (in every update mode) agrees with the sequential
    /// PMA on single-threaded operation sequences.
    #[test]
    fn concurrent_pma_matches_sequential(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        for mode in [
            UpdateMode::Synchronous,
            UpdateMode::OneByOne,
            UpdateMode::Batch { t_delay: std::time::Duration::from_millis(1) },
        ] {
            let params = PmaParams { update_mode: mode, ..PmaParams::small() };
            let concurrent = ConcurrentPma::new(params).unwrap();
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();
            for &op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        concurrent.insert(k as i64, v);
                        model.insert(k as i64, v);
                    }
                    Op::Remove(k) => {
                        concurrent.remove(k as i64);
                        model.remove(&(k as i64));
                    }
                    Op::Lookup(_) => {}
                }
            }
            concurrent.flush();
            prop_assert_eq!(concurrent.len(), model.len());
            for (&k, &v) in &model {
                prop_assert_eq!(concurrent.get(k), Some(v));
            }
            let stats = concurrent.scan_all();
            prop_assert_eq!(stats.count as usize, model.len());
            prop_assert_eq!(stats.key_sum, model.keys().map(|&k| k as i128).sum::<i128>());
        }
    }

    /// Calibrator-tree thresholds always interpolate monotonically between the
    /// leaf and root values, and windows always contain their pivot segment.
    #[test]
    fn calibrator_threshold_algebra(
        segments_log in 0u32..10,
        capacity in 4usize..256,
        pivot in 0usize..1024,
    ) {
        let segments = 1usize << segments_log;
        let pivot = pivot % segments;
        let tree = CalibratorTree::new(segments, capacity, DensityThresholds::strict());
        for level in 1..=tree.height() {
            let tau = tree.upper_threshold(level);
            let rho = tree.lower_threshold(level);
            prop_assert!(rho <= tau, "rho {rho} > tau {tau} at level {level}");
            prop_assert!((0.0..=1.0).contains(&tau));
            prop_assert!((0.0..=1.0).contains(&rho));
            let window = tree.window_at(pivot, level);
            prop_assert!(window.contains(pivot));
            prop_assert_eq!(window.num_segments, 1usize << (level - 1));
            prop_assert_eq!(window.start_segment % window.num_segments, 0);
        }
    }

    /// `insert_batch` is equivalent to issuing the same insertions one by
    /// one: after a flush, the final contents (length and `scan_all`
    /// checksums) match, in every update mode. Duplicate keys inside the
    /// batch must resolve to the last occurrence, matching sequential upsert
    /// order.
    #[test]
    fn insert_batch_equivalent_to_single_inserts(
        items in proptest::collection::vec((any::<i16>(), any::<i64>()), 1..600),
    ) {
        for mode in [
            UpdateMode::Synchronous,
            UpdateMode::OneByOne,
            UpdateMode::Batch { t_delay: std::time::Duration::from_millis(1) },
        ] {
            let params = PmaParams { update_mode: mode, ..PmaParams::small() };
            let batched = ConcurrentPma::new(params.clone()).unwrap();
            let single = ConcurrentPma::new(params).unwrap();
            let items: Vec<(i64, i64)> = items.iter().map(|&(k, v)| (k as i64, v)).collect();
            batched.insert_batch(&items);
            for &(k, v) in &items {
                single.insert(k, v);
            }
            batched.flush();
            single.flush();
            prop_assert_eq!(batched.len(), single.len());
            prop_assert_eq!(batched.scan_all(), single.scan_all());
            prop_assert_eq!(
                batched.scan_range(-100, 100),
                single.scan_range(-100, 100)
            );
        }
    }

    /// Bulk loading presizes the array so that the loaded density stays
    /// within the calibrated bounds: never above the root's upper threshold
    /// `tau_h` (asserted through the calibrator itself), with one gap per
    /// segment guaranteed, a power-of-two gate count, and — whenever rounding
    /// to powers of two allows — not so sparse that the load lands below half
    /// the presizing target `(rho_h + tau_h) / 2`. No rebalance of any kind
    /// may run during the load.
    #[test]
    fn bulk_loaded_density_stays_within_calibrated_bounds(
        n in 0usize..20_000,
        seg_capacity_log in 2u32..8,
    ) {
        let params = PmaParams {
            segment_capacity: 1usize << seg_capacity_log,
            ..PmaParams::small()
        };
        let items: Vec<(i64, i64)> = (0..n as i64).map(|k| (k * 2, -k)).collect();
        let pma = ConcurrentPma::from_sorted(params.clone(), &items).unwrap();
        prop_assert_eq!(pma.len(), n);
        prop_assert_eq!(pma.stats().total_rebalances(), 0);
        prop_assert!(pma.num_gates().is_power_of_two());

        let capacity = pma.capacity();
        let num_segments = capacity / params.segment_capacity;
        // Upper bound via the calibrator: the root window must be within its
        // threshold, i.e. the load never exceeds `max_root_fill`.
        let calibrator = CalibratorTree::new(
            num_segments,
            params.segment_capacity,
            params.thresholds,
        );
        prop_assert!(
            n <= calibrator.max_root_fill(),
            "n = {} over max_root_fill = {} (capacity {})",
            n, calibrator.max_root_fill(), capacity
        );
        // One gap per segment.
        prop_assert!(n <= num_segments * (params.segment_capacity - 1));
        // Lower bound: gates are not wasted — with half as many gates the
        // target density would be exceeded (only checkable above one gate).
        if pma.num_gates() > 1 {
            let target =
                (params.thresholds.rho_root + params.thresholds.tau_root) / 2.0;
            let halved = capacity / 2;
            prop_assert!(
                n as f64 / halved as f64 > target
                    || n > (num_segments / 2) * (params.segment_capacity - 1),
                "n = {} fits in half the capacity {}",
                n, capacity
            );
        }
    }

    /// The sharded engine's cross-shard `scan_range` — a k-way merge of the
    /// per-shard ordered streams — is observably identical to scanning a
    /// single inner instance holding the same contents, for ranges that fall
    /// inside one shard, straddle shard fences, cover everything, or miss
    /// entirely. The shard fences are data-driven (`from_sorted` cuts the run
    /// at percentiles), so random inputs place the fences in random spots.
    #[test]
    fn sharded_scan_range_matches_single_instance(
        items in proptest::collection::vec((any::<i16>(), any::<i64>()), 1..500),
        ranges in proptest::collection::vec((any::<i16>(), any::<i16>()), 1..12),
        shards in 2usize..6,
    ) {
        use pma_common::ConcurrentMap;
        let mut sorted: Vec<(i64, i64)> =
            items.iter().map(|&(k, v)| (k as i64, v)).collect();
        sorted.sort_by_key(|&(k, _)| k);
        let spec = format!("sharded:{shards}:pma-batch:1");
        let sharded = rma_concurrent::workloads::build_loaded(&spec, &sorted).unwrap();
        let single = rma_concurrent::workloads::build_loaded("pma-batch:1", &sorted).unwrap();
        prop_assert_eq!(sharded.len(), single.len());
        prop_assert_eq!(sharded.scan_all(), single.scan_all());
        for (a, b) in ranges {
            let (lo, hi) = ((a as i64).min(b as i64), (a as i64).max(b as i64));
            prop_assert_eq!(sharded.scan_range(lo, hi), single.scan_range(lo, hi));
            // The visitor path reproduces the exact global order.
            let mut got = Vec::new();
            sharded.range(lo, hi, &mut |k, v| got.push((k, v)));
            let mut expected = Vec::new();
            single.range(lo, hi, &mut |k, v| expected.push((k, v)));
            prop_assert_eq!(got, expected);
            // Inverted ranges are empty.
            prop_assert_eq!(sharded.scan_range(hi, lo.wrapping_sub(1)).count, 0);
        }
    }

    /// Uniform workload generation stays inside the requested key range and
    /// Zipf generation is reproducible.
    #[test]
    fn key_generators_respect_their_domain(seed in any::<u64>(), range_log in 4u32..24) {
        use rma_concurrent::workloads::{Distribution, KeyGenerator};
        let range = 1u64 << range_log;
        let mut uniform = KeyGenerator::new(Distribution::Uniform, range, seed);
        let mut zipf = KeyGenerator::new(Distribution::Zipf { alpha: 1.5 }, range, seed);
        for _ in 0..200 {
            let u = uniform.next_key();
            let z = zipf.next_key();
            prop_assert!((0..range as i64).contains(&u));
            prop_assert!((0..range as i64).contains(&z));
        }
    }
}

/// One operation of a generated byte-keyed sequence. Keys are drawn from a
/// small alphabet with bounded length, so sequences collide often (hitting
/// the overwrite/remove paths) and share prefixes heavily (hitting the byte
/// chunks' prefix-compression rebuilds).
#[derive(Debug, Clone)]
enum ByteOp {
    Insert(Vec<u8>, i64),
    Remove(Vec<u8>),
    Lookup(Vec<u8>),
}

fn byte_key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Alphabet of 3 symbols, length 0..=6: dense collisions, deep prefixes.
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(0u8)], 0..7)
}

fn byte_op_strategy() -> impl Strategy<Value = ByteOp> {
    prop_oneof![
        3 => (byte_key_strategy(), any::<i64>()).prop_map(|(k, v)| ByteOp::Insert(k, v)),
        1 => byte_key_strategy().prop_map(ByteOp::Remove),
        1 => byte_key_strategy().prop_map(ByteOp::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every registered byte backend (except the 8-byte-only `b64` adapter)
    /// behaves exactly like `BTreeMap<Vec<u8>, i64>` under arbitrary
    /// operation sequences, including empty keys and zero bytes inside keys,
    /// and agrees on prefix scans afterwards.
    #[test]
    fn byte_backends_match_btreemap(
        ops in proptest::collection::vec(byte_op_strategy(), 1..250),
        prefix in byte_key_strategy(),
    ) {
        use rma_concurrent::workloads::{build_bytes, ensure_builtin_backends};
        use rma_concurrent::common::{ByteScanStats, Registry};

        ensure_builtin_backends();
        let mut specs = Registry::global().byte_names();
        specs.retain(|name| name != "b64");
        specs.push("bpma:4".to_string());
        specs.push("bsharded:3:bpma:8".to_string());
        for spec in &specs {
            let map = build_bytes(spec).unwrap();
            let mut model: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
            for op in &ops {
                match op {
                    ByteOp::Insert(k, v) => {
                        map.insert(k, *v);
                        model.insert(k.clone(), *v);
                    }
                    ByteOp::Remove(k) => {
                        prop_assert_eq!(map.remove(k), model.remove(k), "{}", spec);
                    }
                    ByteOp::Lookup(k) => {
                        prop_assert_eq!(map.get(k), model.get(k).copied(), "{}", spec);
                    }
                }
            }
            map.flush();
            prop_assert_eq!(map.len(), model.len(), "{}", spec);
            let mut expected = ByteScanStats::default();
            for (k, &v) in &model {
                expected.visit(k, v);
            }
            prop_assert_eq!(map.scan_all(), expected, "{}", spec);
            let mut expected_prefix = ByteScanStats::default();
            for (k, &v) in model.iter().filter(|(k, _)| k.starts_with(&prefix)) {
                expected_prefix.visit(k, v);
            }
            prop_assert_eq!(map.prefix_stats(&prefix), expected_prefix, "{}", spec);
        }
    }
}
