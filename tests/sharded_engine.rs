//! Stress and integration tests for the range-sharded engine: shard splits
//! and merges racing concurrent writers and scanners, equivalence against a
//! `BTreeMap` model, and the engine running under the workload drivers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pma_common::{ConcurrentMap, Registry};
use rma_concurrent::engine::{ShardedConfig, ShardedMap};
use rma_concurrent::workloads::ensure_builtin_backends;

fn stress_config() -> ShardedConfig {
    ShardedConfig {
        shards: 2,
        inner_spec: "pma-batch:1".to_string(),
        // Aggressive thresholds + a fast monitor so the run performs many
        // directory swaps while the writers and scanners are live; a
        // hysteresis window of 1 acts on the first threshold crossing.
        split_above: 2_000,
        merge_below: 256,
        hysteresis_rounds: 1,
        monitor_interval: Duration::from_millis(2),
        auto_manage: true,
    }
}

/// Runs `workers` concurrently with two scanner threads asserting that the
/// cross-shard visitor path observes a strictly ascending key stream at every
/// moment — including while the directory is being re-published under it.
fn with_order_checking_scanners(map: &ShardedMap, workers: Vec<impl FnOnce() + Send>) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        for _ in 0..2 {
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut last = i64::MIN;
                    let mut first = true;
                    map.range(i64::MIN, i64::MAX, &mut |k, _| {
                        assert!(first || k > last, "scan order violated: {k} after {last}");
                        first = false;
                        last = k;
                    });
                    // The stats-folding scan keeps working concurrently too.
                    let _ = map.scan_all();
                }
            });
        }
        let handles: Vec<_> = workers.into_iter().map(|w| scope.spawn(w)).collect();
        for handle in handles {
            handle.join().expect("a writer panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });
}

/// Shard splits and merges race 4 writers and 2 order-checking scanners; the
/// final contents must equal the `BTreeMap` model of the deterministic
/// per-writer schedules.
///
/// The insert and delete phases are separated by a flush barrier: writers own
/// disjoint key sets and no two operations on the *same* key are ever
/// concurrent, so the test isolates the machinery this engine adds
/// (split/merge under load) from the inner PMA's known late-replay windows
/// on racing same-key updates (see ROADMAP).
#[test]
fn splits_and_merges_under_concurrent_writers_and_scanners() {
    ensure_builtin_backends();
    const WRITERS: i64 = 4;
    const KEYS_PER_WRITER: i64 = 12_000;

    let map = ShardedMap::new(stress_config(), Registry::global()).unwrap();

    // Phase 1: concurrent inserts while the monitor splits hot shards.
    with_order_checking_scanners(
        &map,
        (0..WRITERS)
            .map(|t| {
                let map = &map;
                move || {
                    for i in 0..KEYS_PER_WRITER {
                        let key = i * WRITERS + t;
                        map.insert(key, key.wrapping_mul(2));
                    }
                }
            })
            .collect(),
    );
    map.flush();

    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    for key in 0..WRITERS * KEYS_PER_WRITER {
        model.insert(key, key.wrapping_mul(2));
    }
    assert_eq!(map.len(), model.len(), "length diverged after inserts");
    let stats = map.scan_all();
    assert_eq!(stats.count as usize, model.len());
    assert_eq!(
        stats.key_sum,
        model.keys().map(|&k| k as i128).sum::<i128>()
    );
    assert_eq!(
        stats.value_sum,
        model.values().map(|&v| v as i128).sum::<i128>()
    );
    for key in (0..WRITERS * KEYS_PER_WRITER).step_by(997) {
        assert_eq!(map.get(key), model.get(&key).copied(), "key {key}");
    }
    // The monitor must split the (now far oversized) data. On a starved
    // box the monitor thread can spend the whole insert phase inside its
    // first structural op — the startup merge of the two empty seed shards —
    // so rather than sampling the counter at an arbitrary instant, wait for
    // the split the oversized shard guarantees (mirrors the merge wait in
    // phase 3 below).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while map.stats().shard_splits == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        map.stats().shard_splits > 0,
        "the stress run must actually split: {:?}",
        map.stats()
    );

    // Phase 2: concurrent deletes of two thirds of the keys (still disjoint
    // per writer) while scans keep running and cold shards start merging.
    with_order_checking_scanners(
        &map,
        (0..WRITERS)
            .map(|t| {
                let map = &map;
                move || {
                    for i in 0..KEYS_PER_WRITER {
                        if i % 3 != 0 {
                            map.remove(i * WRITERS + t);
                        }
                    }
                }
            })
            .collect(),
    );
    map.flush();
    model.retain(|&key, _| (key / WRITERS) % 3 == 0);
    assert_eq!(map.len(), model.len(), "length diverged after deletes");
    assert_eq!(map.scan_all().count as usize, model.len());

    // Phase 3: drain completely; the monitor merges the cold shards down and
    // the map stays consistent throughout.
    for key in 0..WRITERS * KEYS_PER_WRITER {
        map.remove(key);
    }
    map.flush();
    assert_eq!(map.len(), 0);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while map.num_shards() > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        map.stats().shard_merges > 0,
        "draining must trigger merges: {:?}",
        map.stats()
    );
    assert_eq!(map.scan_all().count, 0);
}

/// One round of the scan-during-split consistency stress: order-checking
/// snapshot scanners run across ≥ 3 concurrent incremental splits/merges
/// while writers keep landing, and every scanner must observe each *stable*
/// key (one the writers never touch) exactly once per snapshot — a directory
/// transition that double-visited a shard would break the strictly-ascending
/// order, and one that skipped a fence-crossing range would drop stable keys.
fn scan_during_split_round(round: u64) {
    const STABLE: i64 = 20_000; // even keys, untouched after preload
    const WRITERS: i64 = 2;
    const OPS_PER_WRITER: i64 = 8_000; // odd keys, disjoint per writer

    let config = ShardedConfig {
        auto_manage: false,
        shards: 1,
        monitor_interval: Duration::ZERO,
        ..stress_config()
    };
    let map = ShardedMap::new(config, Registry::global()).unwrap();
    let preload: Vec<(i64, i64)> = (0..STABLE).map(|i| (i * 2, i * 2 + round as i64)).collect();
    map.insert_batch(&preload);
    map.flush();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        let map = &map;
        // Two snapshot scanners: each pass pins one directory generation and
        // checks ascending order + stable-key completeness.
        for _ in 0..2 {
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = map.snapshot();
                    let generation = snapshot.generation();
                    let mut last = i64::MIN;
                    let mut first = true;
                    let mut stable_seen = 0i64;
                    snapshot.range(i64::MIN, i64::MAX, &mut |k, _| {
                        assert!(
                            first || k > last,
                            "snapshot scan order violated: {k} after {last} (gen {generation})"
                        );
                        first = false;
                        last = k;
                        if k % 2 == 0 && (0..STABLE * 2).contains(&k) {
                            stable_seen += 1;
                        }
                    });
                    assert_eq!(
                        stable_seen, STABLE,
                        "snapshot (gen {generation}) skipped or duplicated stable keys"
                    );
                    assert_eq!(
                        snapshot.generation(),
                        generation,
                        "a snapshot's pinned generation can never move"
                    );
                }
            });
        }
        // Writers churn odd keys (disjoint per writer: no same-key races).
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                scope.spawn(move || {
                    for i in 0..OPS_PER_WRITER {
                        let key = (i * WRITERS + t) * 2 + 1;
                        map.insert(key, -key);
                        if i % 2 == 0 {
                            map.remove(key);
                        }
                    }
                })
            })
            .collect();
        // ≥ 3 structural changes race the writers and scanners.
        assert!(map.split_shard(0).unwrap());
        assert!(map.split_shard(1).unwrap());
        assert!(map.merge_shards(0).unwrap());
        assert!(map.split_shard(0).unwrap());
        for handle in writer_handles {
            handle.join().expect("a writer panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    map.flush();
    let stats = map.stats();
    assert!(stats.directory_swaps() >= 3, "{stats:?}");
    // Final contents: all stable keys plus the odd keys the writers kept.
    let kept_odd = WRITERS * OPS_PER_WRITER / 2;
    assert_eq!(map.len() as i64, STABLE + kept_odd);
    let scan = map.scan_all();
    assert_eq!(scan.count as i64, STABLE + kept_odd);
    for i in (0..STABLE).step_by(487) {
        assert_eq!(
            map.get(i * 2),
            Some(i * 2 + round as i64),
            "stable key lost"
        );
    }
    // The owned-window invariant holds through every fold: nothing was
    // replayed after its window (or the split's final fence) was released.
    let combining = map
        .combining_stats()
        .expect("pma-backed shards report combining stats");
    assert_eq!(combining.late_replays, 0, "late replay during a split");
}

/// Scan-during-split consistency: defaults to one round per test run; CI's
/// sanitizer/stress jobs loop it via `SHARDED_STRESS_ITERS` (the acceptance
/// bar is 200 clean release iterations).
#[test]
fn scans_stay_snapshot_consistent_across_splits() {
    ensure_builtin_backends();
    let iters: u64 = std::env::var("SHARDED_STRESS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for round in 0..iters {
        scan_during_split_round(round);
    }
}

/// Regression for the 0-split stress flake: the monitor used to merge the
/// two *never-written* seed shards within its first rounds (their combined
/// len of 0 sits below any merge threshold), occasionally spending the whole
/// insert phase inside that pointless structural op and finishing a stress
/// round with `shard_splits == 0`. The monitor now skips merge evaluation
/// until both pair members have seen a write, so across 50 fresh-map
/// iterations the seed directory must never shrink, the oversized shard must
/// always split, and no merge must ever fire (the untouched seed shard keeps
/// every pair ineligible).
#[test]
fn monitor_never_merges_unwritten_seed_shards() {
    ensure_builtin_backends();
    for iteration in 0..50 {
        let map = ShardedMap::new(stress_config(), Registry::global()).unwrap();
        // Give the monitor a few rounds alone with the empty seed shards.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            map.num_shards(),
            2,
            "iteration {iteration}: merged never-written seed shards"
        );
        // Load only the upper shard past the split threshold; the lower seed
        // shard stays unwritten, so every merge pair stays ineligible while
        // the split fires.
        let run: Vec<(i64, i64)> = (0..3_000).map(|k| (k, -k)).collect();
        map.insert_batch(&run);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while map.stats().shard_splits == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = map.stats();
        assert!(
            stats.shard_splits > 0,
            "iteration {iteration}: the oversized shard never split: {stats:?}"
        );
        assert_eq!(
            stats.shard_merges, 0,
            "iteration {iteration}: merged a pair containing an unwritten shard"
        );
        map.flush();
        assert_eq!(map.len(), 3_000, "iteration {iteration}");
    }
}

/// Manual splits and merges (the API the monitor drives) keep point ops and
/// scans correct while writers are live.
#[test]
fn manual_split_merge_with_live_writers() {
    ensure_builtin_backends();
    let config = ShardedConfig {
        auto_manage: false,
        shards: 1,
        inner_spec: "pma-batch:1".to_string(),
        ..ShardedConfig::default()
    };
    let map = ShardedMap::new(config, Registry::global()).unwrap();
    for k in 0..8_000i64 {
        map.insert(k, -k);
    }
    map.flush();

    std::thread::scope(|scope| {
        let map = &map;
        let writer = scope.spawn(move || {
            for k in 8_000..16_000i64 {
                map.insert(k, -k);
            }
        });
        // Interleave structural changes with the writer.
        for round in 0..6 {
            let shards = map.num_shards();
            if round % 2 == 0 || shards == 1 {
                map.split_shard(round % shards).unwrap();
            } else {
                map.merge_shards(0).unwrap();
            }
        }
        writer.join().expect("writer panicked");
    });

    map.flush();
    assert_eq!(map.len(), 16_000);
    let stats = map.scan_all();
    assert_eq!(stats.count, 16_000);
    for k in (0..16_000i64).step_by(397) {
        assert_eq!(map.get(k), Some(-k));
    }
}

/// The sharded backend is driven through the unchanged workload harness by
/// spec string, and the new latency capture sees every operation.
#[test]
fn sharded_backend_runs_under_the_workload_drivers() {
    use rma_concurrent::workloads::{
        run_workload, Distribution, ThreadSplit, UpdatePattern, WorkloadSpec,
    };
    ensure_builtin_backends();
    let map = rma_concurrent::workloads::build("sharded:4:pma-batch:1")
        .expect("sharded spec must build through the registry");
    let spec = WorkloadSpec {
        distribution: Distribution::Uniform,
        key_range: 1 << 16,
        total_elements: 20_000,
        threads: ThreadSplit {
            update_threads: 4,
            scan_threads: 2,
        },
        pattern: UpdatePattern::InsertOnly,
        ..WorkloadSpec::default()
    };
    let m = run_workload(&*map, &spec);
    assert_eq!(m.update_ops, 20_000);
    assert_eq!(
        m.update_latency.count(),
        20_000 / rma_concurrent::workloads::LATENCY_SAMPLE_INTERVAL as u64
    );
    assert!(m.scans_completed > 0, "scanners must have run");
    assert_eq!(m.final_len, map.len());
    assert_eq!(map.scan_all().count as usize, m.final_len);
    // The sharded engine reports its structural maintenance to the drivers
    // (split/merge counts and the write stall their fences caused).
    let maintenance = m.maintenance.expect("sharded reports maintenance stats");
    assert_eq!(
        maintenance.splits,
        map.maintenance_stats().unwrap().splits,
        "the measurement snapshot must match the live counters"
    );
}
