//! Property-based tests (proptest) pinning every hand-rolled SIMD kernel in
//! `pma_common::simd` bit-identical to its scalar definition — across every
//! variant the running CPU supports, on runs with duplicates, empty runs,
//! and boundary keys (`i64::MIN`/`i64::MAX`).
//!
//! CI also runs the whole suite under `PMA_FORCE_SCALAR=1`, so the scalar
//! fallback gets exercised as the *active* kernel too, not only as the
//! reference here.

use proptest::prelude::*;

use rma_concurrent::common::simd::{self, RunSearch, Variant};

/// Sorted runs biased toward duplicates and the extremes of the key domain.
fn run_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    let key = prop_oneof![
        4 => any::<i64>(),
        2 => (-8i64..8).prop_map(|k| k),
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
    ];
    proptest::collection::vec(key, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Probe keys hitting the same biased distribution as the runs.
fn probe_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        4 => any::<i64>(),
        2 => (-8i64..8).prop_map(|k| k),
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `count_le_with` matches `partition_point(x <= key)` for every
    /// supported variant — the single semantic the whole module hangs off.
    #[test]
    fn count_le_matches_partition_point(
        run in run_strategy(300),
        key in probe_strategy(),
    ) {
        let expected = run.partition_point(|&x| x <= key);
        for variant in [Variant::Avx2, Variant::Sse2, Variant::Neon, Variant::Scalar] {
            if variant.supported() {
                prop_assert_eq!(
                    simd::count_le_with(variant, &run, key),
                    expected,
                    "variant {:?}",
                    variant
                );
            }
        }
        prop_assert_eq!(simd::count_le(&run, key), expected);
    }

    /// `count_lt` matches `partition_point(x < key)`, including at
    /// `i64::MIN` where the `key - 1` decrement trick must not wrap.
    #[test]
    fn count_lt_matches_partition_point(
        run in run_strategy(300),
        key in probe_strategy(),
    ) {
        prop_assert_eq!(simd::count_lt(&run, key), run.partition_point(|&x| x < key));
    }

    /// `search` agrees with `slice::binary_search` on hit/miss and returns
    /// the *first* occurrence for duplicated keys.
    #[test]
    fn search_matches_binary_search_first_occurrence(
        run in run_strategy(300),
        key in probe_strategy(),
    ) {
        match simd::search(&run, key) {
            Ok(pos) => {
                prop_assert_eq!(run[pos], key);
                prop_assert!(pos == 0 || run[pos - 1] < key);
            }
            Err(pos) => {
                prop_assert!(run.binary_search(&key).is_err());
                prop_assert_eq!(pos, run.partition_point(|&x| x < key));
            }
        }
    }

    /// Fence routing returns the last separator `<= key`, clamped to 0 when
    /// every separator is greater (first entry acts as `-inf`).
    #[test]
    fn route_picks_last_covering_separator(
        run in run_strategy(128),
        key in probe_strategy(),
    ) {
        let got = simd::route(&run, key);
        let expected = run.partition_point(|&x| x <= key).saturating_sub(1);
        prop_assert_eq!(got, expected);
        if !run.is_empty() {
            prop_assert!(got < run.len());
        }
    }

    /// The vector run-copy is bit-identical to `extend_from_slice`,
    /// including appending onto a non-empty destination.
    #[test]
    fn append_run_matches_extend(
        prefix in proptest::collection::vec(any::<i64>(), 0..32),
        src in proptest::collection::vec(any::<i64>(), 0..300),
    ) {
        let mut fast = prefix.clone();
        simd::append_run(&mut fast, &src);
        let mut slow = prefix;
        slow.extend_from_slice(&src);
        prop_assert_eq!(fast, slow);
    }

    /// `AlignedKeys` round-trips its input and every cache line start is
    /// 64-byte aligned.
    #[test]
    fn aligned_keys_roundtrip(run in run_strategy(200)) {
        let aligned = simd::AlignedKeys::from_slice(&run);
        prop_assert_eq!(aligned.as_slice(), &run[..]);
        prop_assert_eq!(aligned.len(), run.len());
        if !run.is_empty() {
            prop_assert_eq!(aligned.as_slice().as_ptr() as usize % 64, 0);
        }
    }

    /// The generic `RunSearch` entry points (used by the sequential PMA for
    /// any key type) agree with the dedicated i64 kernels.
    #[test]
    fn run_search_trait_matches_kernels(
        run in run_strategy(300),
        key in probe_strategy(),
    ) {
        prop_assert_eq!(i64::search_run(&run, &key), simd::search(&run, key));
        prop_assert_eq!(i64::count_le_run(&run, &key), simd::count_le(&run, key));
        // A non-i64 type goes through the scalar default impl.
        let narrow: Vec<i32> = run.iter().map(|&x| (x % 1000) as i32).collect();
        let mut sorted = narrow.clone();
        sorted.sort_unstable();
        let probe = (key % 1000) as i32;
        prop_assert_eq!(i32::search_run(&sorted, &probe), sorted.binary_search(&probe));
    }
}

/// Deterministic spot checks for the exact boundary shapes random testing
/// can miss: empty runs, all-equal runs, and full-domain separators.
#[test]
fn boundary_spot_checks() {
    for variant in [Variant::Avx2, Variant::Sse2, Variant::Neon, Variant::Scalar] {
        if !variant.supported() {
            continue;
        }
        assert_eq!(simd::count_le_with(variant, &[], 0), 0);
        assert_eq!(simd::count_le_with(variant, &[i64::MIN; 97], i64::MIN), 97);
        assert_eq!(simd::count_le_with(variant, &[i64::MAX; 97], i64::MAX), 97);
        assert_eq!(
            simd::count_le_with(variant, &[i64::MAX; 97], i64::MAX - 1),
            0
        );
        let run: Vec<i64> = (0..1000).map(|i| i * 2).collect();
        for key in [-1, 0, 1, 999, 1000, 1998, 1999, 2000, i64::MIN, i64::MAX] {
            assert_eq!(
                simd::count_le_with(variant, &run, key),
                run.partition_point(|&x| x <= key),
                "variant {variant:?} key {key}"
            );
        }
    }
    assert_eq!(simd::count_lt(&[i64::MIN, 0], i64::MIN), 0);
    assert_eq!(simd::route(&[], 5), 0);
    assert_eq!(simd::route(&[10], 5), 0);
}

/// Strictly-ascending byte fence sets from a tiny alphabet, so many fences
/// share their 8-byte head and the scalar tie-break actually runs.
fn byte_fence_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let key = proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(0xFFu8)], 0..12);
    proptest::collection::vec(key, 1..24).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `ByteFences::route` — the head-packed SIMD probe plus the scalar
    /// tie-break over equal-head runs — matches the full-key reference
    /// `partition_point(fence <= key) - 1` for every probe, including keys
    /// longer than 8 bytes where the head alone cannot decide.
    #[test]
    fn byte_fence_route_matches_full_key_reference(
        fences in byte_fence_strategy(),
        probe in proptest::collection::vec(any::<u8>(), 0..14),
    ) {
        let packed = simd::ByteFences::from_keys(&fences);
        let expected = fences
            .partition_point(|f| f.as_slice() <= probe.as_slice())
            .saturating_sub(1);
        prop_assert_eq!(packed.route(&probe), expected, "probe {:?} fences {:?}", probe, fences);
        // Probing each fence key exactly lands on its own slot.
        for (slot, fence) in fences.iter().enumerate() {
            prop_assert_eq!(packed.route(fence), slot, "self-probe {:?}", fence);
        }
    }
}
