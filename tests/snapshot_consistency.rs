//! Repeatable-reads property suite for `frozen()` point-in-time views.
//!
//! The contract under test: a view captured by [`ConcurrentMap::frozen`]
//! answers every read from the map's *settled* state at freeze time, and
//! keeps answering identically no matter how the live map mutates — writers
//! copy chunks instead of mutating what a view pinned (copy-on-write), so a
//! re-scan of the same view is bit-identical to the first scan.
//!
//! Two properties are checked per registered backend and key distribution:
//!
//! * **Quiesced equality** — after a flush, a frozen view equals a
//!   `BTreeMap` model of the applied operations exactly (len, point gets,
//!   full ordered scan, folded stats).
//! * **Mid-storm repeatability** — a view frozen while 4 writer threads
//!   churn is re-scanned N times; all N scans must be bit-identical, agree
//!   with the view's own `len`/`scan_all`, keep the untouched preload keys
//!   exactly, and only ever show churn keys with the single value function
//!   the writers use (any other value would mix two settled states).
//!
//! Iteration counts scale with the build profile and are overridable:
//! `SNAPSHOT_STRESS_ITERS` sets the per-test iteration count and
//! `SNAPSHOT_SEED` perturbs the key layout (CI loops these in the
//! sanitizer/stress jobs and the scalar-fallback job).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use pma_common::{ConcurrentMap, FrozenView, Key, Value};
use rma_concurrent::workloads::ensure_builtin_backends;

/// Backends the suite runs against: the paper instance in both combining
/// modes and the sharded engine composing them (whose `frozen()` also
/// exercises the delta-overlay path when the monitor restructures).
const BACKENDS: &[&str] = &[
    "pma-batch:100",
    "pma-batch:1",
    "sharded:8:pma-batch:100",
    "sharded:4:pma-batch:1",
];

/// Key layouts the properties are checked under: dense sequential keys keep
/// every gate full (rebalance/resize pressure), strided keys spread over a
/// sparse domain (fence-moving redistribution pressure).
const DISTRIBUTIONS: &[(&str, i64)] = &[("dense", 1), ("strided", 1 << 20)];

fn iters() -> u64 {
    std::env::var("SNAPSHOT_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 3 } else { 25 })
}

fn seed() -> i64 {
    std::env::var("SNAPSHOT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn build(spec: &str) -> std::sync::Arc<dyn ConcurrentMap> {
    ensure_builtin_backends();
    rma_concurrent::workloads::build(spec).expect("suite backend must build")
}

/// Full ordered materialisation of a frozen view.
fn dump(view: &dyn FrozenView) -> Vec<(Key, Value)> {
    view.collect_range(i64::MIN, i64::MAX)
}

/// Quiesced equality: after deterministic inserts/overwrites/removes and a
/// flush, the frozen view is the `BTreeMap` model.
#[test]
fn frozen_equals_model_when_quiesced() {
    const KEYS: i64 = 4_000;
    let seed = seed();
    for &spec in BACKENDS {
        for &(dist, stride) in DISTRIBUTIONS {
            let map = build(spec);
            let mut model: BTreeMap<Key, Value> = BTreeMap::new();
            for i in 0..KEYS {
                let key = i * stride + seed;
                map.insert(key, key.wrapping_mul(3));
                model.insert(key, key.wrapping_mul(3));
            }
            for i in (0..KEYS).step_by(3) {
                let key = i * stride + seed;
                map.remove(key);
                model.remove(&key);
            }
            for i in (0..KEYS).step_by(5) {
                let key = i * stride + seed;
                map.insert(key, -key);
                model.insert(key, -key);
            }
            map.flush();

            let frozen = map
                .frozen()
                .unwrap_or_else(|| panic!("{spec} must support frozen views"));
            let label = format!("{spec}/{dist}");
            assert_eq!(frozen.len(), model.len(), "{label}: len");
            assert!(!frozen.is_empty(), "{label}: is_empty");
            let contents: Vec<(Key, Value)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(dump(frozen.as_ref()), contents, "{label}: full scan");
            let stats = frozen.scan_all();
            assert_eq!(stats.count as usize, model.len(), "{label}: stats count");
            assert_eq!(
                stats.key_sum,
                model.keys().map(|&k| k as i128).sum::<i128>(),
                "{label}: stats key_sum"
            );
            for i in (0..KEYS).step_by(7) {
                let key = i * stride + seed;
                assert_eq!(
                    frozen.get(key),
                    model.get(&key).copied(),
                    "{label}: get {key}"
                );
            }
            // A sub-range agrees with the model's sub-range too.
            let (lo, hi) = (KEYS / 4 * stride + seed, KEYS / 2 * stride + seed);
            let window: Vec<(Key, Value)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(frozen.collect_range(lo, hi), window, "{label}: sub-range");
        }
    }
}

/// One mid-storm round for one backend/distribution: preload stable keys,
/// start 4 churning writers, freeze repeatedly, and require every view to be
/// internally consistent and bit-stable across `RESCANS` re-scans.
fn storm_round(spec: &str, stride: i64, seed: i64, label: &str) {
    const STABLE: i64 = 2_000; // even slots, never touched after preload
    const CHURN: i64 = 2_000; // odd slots, churned by the writers
    const WRITERS: i64 = 4;
    const FREEZES: usize = 6;
    const RESCANS: usize = 4;

    let map = build(spec);
    for i in 0..STABLE {
        let key = i * 2 * stride + seed;
        map.insert(key, key.wrapping_add(7));
    }
    map.flush();

    let stop = AtomicBool::new(false);
    let held = std::thread::scope(|scope| {
        let stop = &stop;
        let map = &map;
        for t in 0..WRITERS {
            scope.spawn(move || {
                // Disjoint odd slots per writer; the value written for a key
                // is always `-key`, so any snapshot can validate every churn
                // element it sees without knowing the interleaving.
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    let slot = (i * WRITERS + t) % CHURN;
                    let key = (slot * 2 + 1) * stride + seed;
                    map.insert(key, -key);
                    if i % 3 == 0 {
                        map.remove(key);
                    }
                    i += 1;
                }
            });
        }

        for _ in 0..FREEZES {
            let frozen = map
                .frozen()
                .unwrap_or_else(|| panic!("{label}: backend must support frozen views"));
            let reference = dump(frozen.as_ref());
            let reference_stats = frozen.scan_all();

            // Internal consistency of the captured state.
            assert_eq!(frozen.len(), reference.len(), "{label}: len vs scan");
            assert_eq!(
                reference_stats.count as usize,
                reference.len(),
                "{label}: stats vs scan"
            );
            let mut stable_seen = 0i64;
            let mut last = i64::MIN;
            let mut first = true;
            for &(key, value) in &reference {
                assert!(
                    first || key > last,
                    "{label}: scan order {key} after {last}"
                );
                first = false;
                last = key;
                let slot = (key - seed) / stride;
                if slot % 2 == 0 {
                    assert_eq!(value, key.wrapping_add(7), "{label}: stable value mixed");
                    stable_seen += 1;
                } else {
                    // A churn key is either absent or carries the one value
                    // any settled insert of it ever wrote.
                    assert_eq!(value, -key, "{label}: churn value mixed");
                }
            }
            assert_eq!(
                stable_seen, STABLE,
                "{label}: stable keys lost or duplicated"
            );

            // Repeatability: N re-scans of the same view are bit-identical
            // while the writers keep mutating the live map.
            for rescan in 0..RESCANS {
                assert_eq!(
                    dump(frozen.as_ref()),
                    reference,
                    "{label}: re-scan {rescan} diverged from the freeze-time state"
                );
                let stats = frozen.scan_all();
                assert_eq!(stats.count, reference_stats.count, "{label}: re-scan count");
                assert_eq!(stats.key_sum, reference_stats.key_sum, "{label}: key_sum");
                assert_eq!(
                    stats.value_sum, reference_stats.value_sum,
                    "{label}: value_sum"
                );
                for i in (0..STABLE).step_by(173) {
                    let key = i * 2 * stride + seed;
                    assert_eq!(
                        frozen.get(key),
                        Some(key.wrapping_add(7)),
                        "{label}: re-read of stable key {key}"
                    );
                }
            }
        }
        // Hold one last view across the writer shutdown and the settling
        // flush below: everything still travelling through the combining
        // queues lands while this view pins the chunks, so the settle *must*
        // copy instead of mutating under it.
        let held = map
            .frozen()
            .unwrap_or_else(|| panic!("{label}: backend must support frozen views"));
        stop.store(true, Ordering::Relaxed);
        held
    });

    let held_reference = dump(held.as_ref());
    map.flush();
    assert_eq!(
        dump(held.as_ref()),
        held_reference,
        "{label}: the settling flush mutated a pinned view"
    );
    let baseline = map
        .maintenance_stats()
        .unwrap_or_else(|| panic!("{label}: backend must report maintenance stats"));

    // Deterministic copy-on-write probe: overwrite settled keys while a
    // fresh view pins their chunks. An overwrite never grows the array, so
    // no resize can swap a fresh instance in under the view — the settle
    // has to copy the pinned chunks it touches (a storm alone cannot assert
    // this: its growth may settle through a resize, which *builds* new
    // chunks rather than copying pinned ones).
    let probe = map
        .frozen()
        .unwrap_or_else(|| panic!("{label}: backend must support frozen views"));
    for i in (0..STABLE).step_by(37) {
        let key = i * 2 * stride + seed;
        map.insert(key, key.wrapping_sub(9));
    }
    map.flush();
    for i in (0..STABLE).step_by(37) {
        let key = i * 2 * stride + seed;
        assert_eq!(
            probe.get(key),
            Some(key.wrapping_add(7)),
            "{label}: an overwrite reached a pinned view"
        );
    }
    let after = map.maintenance_stats().unwrap();
    assert!(
        after.cow_copies > baseline.cow_copies,
        "{label}: overwrites under a pinned view never copied a chunk \
         (before: {baseline:?}, after: {after:?})"
    );
    if let Some(combining) = map.combining_stats() {
        assert_eq!(combining.late_replays, 0, "{label}: late replay detected");
    }
    // All views dropped: no generation stays pinned.
    drop(held);
    drop(probe);
    assert_eq!(
        map.maintenance_stats().unwrap().pinned_generations,
        0,
        "{label}: a dropped view left its generation pinned"
    );
}

/// Mid-storm repeatability over every backend and key distribution.
#[test]
fn frozen_mid_write_storm_is_repeatable() {
    let seed = seed();
    for round in 0..iters() {
        for &spec in BACKENDS {
            for &(dist, stride) in DISTRIBUTIONS {
                let label = format!("{spec}/{dist}@{round}");
                storm_round(spec, stride, seed + round as i64, &label);
            }
        }
    }
}

/// Overlapping views frozen at different times coexist: each keeps its own
/// state, and dropping the newer one never disturbs the older one.
#[test]
fn stacked_frozen_views_are_independent() {
    let seed = seed();
    for &spec in BACKENDS {
        let map = build(spec);
        for i in 0..1_000i64 {
            map.insert(i + seed, i);
        }
        map.flush();
        let first = map.frozen().expect("frozen view");
        for i in 0..1_000i64 {
            map.insert(i + seed, -i);
        }
        map.flush();
        let second = map.frozen().expect("frozen view");
        let first_dump = dump(first.as_ref());
        let second_dump = dump(second.as_ref());
        assert_eq!(first_dump.len(), 1_000, "{spec}");
        assert_eq!(second_dump.len(), 1_000, "{spec}");
        assert_eq!(first.get(seed + 10), Some(10), "{spec}");
        assert_eq!(second.get(seed + 10), Some(-10), "{spec}");
        drop(second);
        assert_eq!(dump(first.as_ref()), first_dump, "{spec}: drop order");
        for i in 0..1_000i64 {
            map.remove(i + seed);
        }
        map.flush();
        assert_eq!(dump(first.as_ref()), first_dump, "{spec}: after drain");
        drop(first);
        assert_eq!(map.len(), 0, "{spec}");
    }
}
