//! Cross-crate integration test: **every backend in the registry** (the
//! concurrent PMA in all update modes, B+-tree, ART, Masstree-like,
//! Bw-Tree-like, plus anything registered later) must agree with a `BTreeMap`
//! model on the same operation sequence — point operations, full scans, and
//! ranged scans (`range` and `scan_range`) over random intervals.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rma_concurrent::common::{ConcurrentMap, Registry};
use rma_concurrent::workloads::ensure_builtin_backends;

/// Every backend name in the registry, instantiated with its default
/// argument, plus the paper-relevant parameterisations.
fn all_specs() -> Vec<String> {
    ensure_builtin_backends();
    let mut specs = Registry::global().names();
    for extra in [
        "pma-batch:1",
        "pma-seg:128",
        "btree:8k",
        // The sharded engine over two different inner structures: the fast
        // -flush PMA and a tree baseline (exercising the insert_batch/flush
        // fallbacks of the composition).
        "sharded:4:pma-batch:1",
        "sharded:3:btree",
    ] {
        specs.push(extra.to_string());
    }
    specs
}

fn build(spec: &str) -> Arc<dyn ConcurrentMap> {
    rma_concurrent::workloads::build(spec).unwrap_or_else(|e| panic!("cannot build `{spec}`: {e}"))
}

/// Applies a mixed random operation sequence to the structure and the model,
/// then compares the full contents.
fn run_model_check(spec: &str, seed: u64, ops: usize) {
    let map = build(spec);
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);

    for i in 0..ops {
        let key = rng.gen_range(0..2_000i64);
        let value = i as i64;
        if rng.gen_bool(0.7) {
            map.insert(key, value);
            model.insert(key, value);
        } else {
            map.remove(key);
            model.remove(&key);
        }
    }
    map.flush();

    assert_eq!(map.len(), model.len(), "{spec}: length mismatch");
    // Point lookups agree.
    for key in 0..2_000i64 {
        assert_eq!(
            map.get(key),
            model.get(&key).copied(),
            "{spec}: lookup mismatch for key {key}"
        );
    }
    // Ordered scan agrees (count and checksums).
    let stats = map.scan_all();
    assert_eq!(stats.count as usize, model.len(), "{spec}");
    let expected_key_sum: i128 = model.keys().map(|&k| k as i128).sum();
    let expected_value_sum: i128 = model.values().map(|&v| v as i128).sum();
    assert_eq!(stats.key_sum, expected_key_sum, "{spec}");
    assert_eq!(stats.value_sum, expected_value_sum, "{spec}");
    // Range scans agree on an arbitrary sub-range.
    let mut got = Vec::new();
    map.range(250, 1_750, &mut |k, v| got.push((k, v)));
    let expected: Vec<(i64, i64)> = model.range(250..=1_750).map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, expected, "{spec}: range mismatch");
    // `scan_range` agrees with BTreeMap reference semantics on random
    // (including empty and out-of-domain) intervals.
    for _ in 0..40 {
        let a = rng.gen_range(-100..2_200i64);
        let b = rng.gen_range(-100..2_200i64);
        let (lo, hi) = (a.min(b), a.max(b));
        let stats = map.scan_range(lo, hi);
        let mut count = 0u64;
        let mut key_sum = 0i128;
        let mut value_sum = 0i128;
        for (&k, &v) in model.range(lo..=hi) {
            count += 1;
            key_sum += k as i128;
            value_sum += v as i128;
        }
        assert_eq!(stats.count, count, "{spec}: scan_range [{lo}, {hi}] count");
        assert_eq!(
            stats.key_sum, key_sum,
            "{spec}: scan_range [{lo}, {hi}] keys"
        );
        assert_eq!(
            stats.value_sum, value_sum,
            "{spec}: scan_range [{lo}, {hi}] values"
        );
        // Inverted ranges are empty.
        if lo < hi {
            assert_eq!(map.scan_range(hi, lo).count, 0, "{spec}: inverted range");
        }
    }
}

#[test]
fn every_registry_backend_matches_the_model_on_random_operations() {
    for spec in all_specs() {
        run_model_check(&spec, 0xDEADBEEF, 10_000);
    }
}

#[test]
fn every_registry_backend_matches_the_model_on_a_second_seed() {
    for spec in all_specs() {
        run_model_check(&spec, 42, 6_000);
    }
}

#[test]
fn structures_handle_bulk_build_then_drain() {
    for spec in all_specs() {
        let map = build(&spec);
        // Exercise the batch-insertion path for half the load, then the
        // point path for the rest.
        let batch: Vec<(i64, i64)> = (0..2_500i64).map(|k| (k, -k)).collect();
        map.insert_batch(&batch);
        for k in 2_500..5_000i64 {
            map.insert(k, -k);
        }
        map.flush();
        assert_eq!(map.len(), 5_000, "{spec}");
        assert_eq!(map.scan_range(0, 4_999).count, 5_000, "{spec}");
        for k in 0..5_000i64 {
            map.remove(k);
        }
        map.flush();
        assert_eq!(map.len(), 0, "{spec}");
        assert_eq!(map.scan_all().count, 0, "{spec}");
    }
}

/// `from_sorted` construction (via `Registry::build_loaded`, which dispatches
/// to each backend's native bulk loader when it has one) must be observably
/// identical to building the same contents through point inserts — for every
/// registered backend, including unsorted input handled by pre-sorting and
/// duplicate keys resolving to the last entry.
#[test]
fn bulk_load_equals_point_insert_construction_for_every_backend() {
    ensure_builtin_backends();
    // Pseudo-random inserts with duplicates; sorted stably so the last
    // occurrence of a key is also the last in the sorted run.
    let inserts: Vec<(i64, i64)> = (0..6_000i64).map(|i| ((i * 37) % 4_001, i)).collect();
    let mut sorted = inserts.clone();
    sorted.sort_by_key(|&(k, _)| k);
    for spec in all_specs() {
        let loaded = rma_concurrent::workloads::build_loaded(&spec, &sorted)
            .unwrap_or_else(|e| panic!("cannot bulk-load `{spec}`: {e}"));
        let pointwise = build(&spec);
        for &(k, v) in &inserts {
            pointwise.insert(k, v);
        }
        loaded.flush();
        pointwise.flush();
        assert_eq!(loaded.len(), pointwise.len(), "{spec}: length");
        assert_eq!(loaded.scan_all(), pointwise.scan_all(), "{spec}: scan_all");
        for probe in [0i64, 1, 2_000, 4_000] {
            assert_eq!(
                loaded.get(probe),
                pointwise.get(probe),
                "{spec}: get({probe})"
            );
        }
        for (lo, hi) in [(0i64, 4_000), (100, 150), (3_999, 3_999), (500, 499)] {
            assert_eq!(
                loaded.scan_range(lo, hi),
                pointwise.scan_range(lo, hi),
                "{spec}: scan_range [{lo}, {hi}]"
            );
        }
        // The loaded structure behaves normally under later updates.
        loaded.insert(-1, -1);
        assert_eq!(loaded.get(-1), Some(-1), "{spec}");
        loaded.remove(-1);
        loaded.flush();
        assert_eq!(loaded.len(), pointwise.len(), "{spec}: after updates");
        // Unsorted input is rejected up front for every backend.
        assert!(
            rma_concurrent::workloads::build_loaded(&spec, &[(2, 0), (1, 0)]).is_err(),
            "{spec}: unsorted input must be rejected"
        );
    }
}

#[test]
fn a_backend_registered_at_runtime_is_selectable_by_string() {
    // Simulates a downstream crate adding a structure without touching
    // pma_workloads: register on the global registry, then build by name.
    use pma_common::registry::BackendDef;
    use pma_common::ScanStats;

    #[derive(Default)]
    struct VecMap(std::sync::Mutex<BTreeMap<i64, i64>>);
    impl ConcurrentMap for VecMap {
        fn insert(&self, key: i64, value: i64) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn remove(&self, key: i64) -> Option<i64> {
            self.0.lock().unwrap().remove(&key)
        }
        fn get(&self, key: i64) -> Option<i64> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn scan_all(&self) -> ScanStats {
            self.scan_range(i64::MIN, i64::MAX)
        }
        fn range(&self, lo: i64, hi: i64, visitor: &mut dyn FnMut(i64, i64)) {
            if lo > hi {
                return;
            }
            for (&k, &v) in self.0.lock().unwrap().range(lo..=hi) {
                visitor(k, v);
            }
        }
        fn name(&self) -> &'static str {
            "locked-btreemap"
        }
    }

    ensure_builtin_backends();
    Registry::global().register(BackendDef {
        name: "locked-btreemap",
        description: "std BTreeMap behind a mutex (test-registered)",
        label: |_| "LockedBTreeMap".to_string(),
        build: |_, _| Ok(Arc::new(VecMap::default())),
        build_loaded: None,
    });
    run_model_check("locked-btreemap", 7, 4_000);
    assert_eq!(
        rma_concurrent::workloads::label("locked-btreemap"),
        "LockedBTreeMap"
    );
}

// ---------------------------------------------------------------------------
// Byte-keyed backends: the same model-agreement discipline over the byte
// table (`Registry::byte_names`), with `BTreeMap<Vec<u8>, i64>` as the model
// and a key mix that stresses the layouts — empty keys, 1-byte keys, and
// shared-prefix-heavy URL-ish keys.
// ---------------------------------------------------------------------------

use rma_concurrent::common::{ByteScanStats, ConcurrentByteMap};

/// Every byte-backend name plus paper-relevant parameterisations. `b64` is
/// excluded (it adapts u64 backends and requires exactly-8-byte keys — it
/// gets its own test below).
fn all_byte_specs() -> Vec<String> {
    ensure_builtin_backends();
    let mut specs = Registry::global().byte_names();
    specs.retain(|name| name != "b64");
    for extra in [
        "bpma:16",
        "bsharded:4:bpma:32",
        // A tree baseline inside the byte-sharded composition (exercising
        // the build-plus-insert_batch bulk-load fallback).
        "bsharded:3:bbtree",
    ] {
        specs.push(extra.to_string());
    }
    specs
}

fn build_bytes(spec: &str) -> Arc<dyn ConcurrentByteMap> {
    rma_concurrent::workloads::build_bytes(spec)
        .unwrap_or_else(|e| panic!("cannot build `{spec}`: {e}"))
}

/// The stress mix: mostly shared-prefix keys, plus empty and 1-byte keys.
fn random_byte_key(rng: &mut SmallRng) -> Vec<u8> {
    match rng.gen_range(0..10u32) {
        0 => Vec::new(),
        1 => vec![rng.gen_range(0..8u8)],
        _ => {
            const STEMS: &[&str] = &[
                "user:",
                "https://example.com/users/",
                "https://example.com/posts/",
                "z",
            ];
            let mut key = STEMS[rng.gen_range(0..STEMS.len())].as_bytes().to_vec();
            key.extend_from_slice(format!("{:03}", rng.gen_range(0..400u32)).as_bytes());
            key
        }
    }
}

/// Order-sensitive checksum of a model interval, for comparing against the
/// structures' `ByteScanStats`.
fn model_stats<'a>(entries: impl Iterator<Item = (&'a Vec<u8>, &'a i64)>) -> ByteScanStats {
    let mut stats = ByteScanStats::default();
    for (key, &value) in entries {
        stats.visit(key, value);
    }
    stats
}

fn run_byte_model_check(spec: &str, seed: u64, ops: usize) {
    let map = build_bytes(spec);
    let mut model: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);

    for i in 0..ops {
        let key = random_byte_key(&mut rng);
        let value = i as i64;
        if rng.gen_bool(0.7) {
            map.insert(&key, value);
            model.insert(key, value);
        } else {
            assert_eq!(map.remove(&key), model.remove(&key), "{spec}: remove");
        }
    }
    map.flush();

    assert_eq!(map.len(), model.len(), "{spec}: length mismatch");
    // Point lookups agree on present and absent keys.
    let mut probe_rng = SmallRng::seed_from_u64(seed ^ 1);
    for _ in 0..500 {
        let key = random_byte_key(&mut probe_rng);
        assert_eq!(
            map.get(&key),
            model.get(&key).copied(),
            "{spec}: lookup mismatch for {key:?}"
        );
    }
    // Full ordered scan agrees (count and order-sensitive checksums).
    assert_eq!(
        map.scan_all(),
        model_stats(model.iter()),
        "{spec}: scan_all"
    );
    // Half-open range scans agree on random (including empty) intervals.
    for _ in 0..40 {
        let a = random_byte_key(&mut probe_rng);
        let b = random_byte_key(&mut probe_rng);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let expected = model_stats(model.range(lo.clone()..hi.clone()));
        assert_eq!(
            map.scan_range(&lo, Some(&hi)),
            expected,
            "{spec}: scan_range [{lo:?}, {hi:?})"
        );
        let unbounded = model_stats(model.range(lo.clone()..));
        assert_eq!(
            map.scan_range(&lo, None),
            unbounded,
            "{spec}: scan_range [{lo:?}, ..)"
        );
    }
    // Prefix scans agree with a filtered full scan of the model.
    for prefix in [
        &b""[..],
        b"user:",
        b"user:1",
        b"https://example.com/",
        b"https://example.com/users/2",
        b"\x00",
        b"missing-prefix",
    ] {
        let expected = model_stats(model.iter().filter(|(k, _)| k.starts_with(prefix)));
        assert_eq!(
            map.prefix_stats(prefix),
            expected,
            "{spec}: prefix {prefix:?}"
        );
    }
}

#[test]
fn every_byte_backend_matches_the_model_on_random_operations() {
    for spec in all_byte_specs() {
        run_byte_model_check(&spec, 0xFEED_BEEF, 6_000);
    }
}

#[test]
fn every_byte_backend_matches_the_model_on_a_second_seed() {
    for spec in all_byte_specs() {
        run_byte_model_check(&spec, 99, 2_500);
    }
}

#[test]
fn byte_bulk_load_equals_point_insert_construction() {
    ensure_builtin_backends();
    let mut rng = SmallRng::seed_from_u64(0x10AD);
    let mut items: Vec<(Vec<u8>, i64)> =
        (0..3_000).map(|i| (random_byte_key(&mut rng), i)).collect();
    items.sort();
    items.dedup_by(|a, b| a.0 == b.0);
    for spec in all_byte_specs() {
        let loaded = rma_concurrent::workloads::build_bytes_loaded(&spec, &items)
            .unwrap_or_else(|e| panic!("cannot load `{spec}`: {e}"));
        let pointwise = build_bytes(&spec);
        for (key, value) in &items {
            pointwise.insert(key, *value);
        }
        pointwise.flush();
        assert_eq!(loaded.len(), items.len(), "{spec}");
        assert_eq!(loaded.scan_all(), pointwise.scan_all(), "{spec}");
        let (mid, _) = &items[items.len() / 2];
        assert_eq!(loaded.get(mid), pointwise.get(mid), "{spec}");
    }
}

#[test]
fn b64_adapter_agrees_with_its_inner_backend_on_encoded_keys() {
    use rma_concurrent::common::types::ByteKey;
    ensure_builtin_backends();
    let map = build_bytes("b64:pma-batch:1");
    let mut model: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(0xB64);
    for i in 0..4_000 {
        // Order-preserving i64 encoding: the byte order of the encoded keys
        // must match the numeric order the inner u64 backend maintains.
        let key = rng.gen_range(-5_000..5_000i64).to_bytes();
        assert_eq!(key.len(), 8);
        if rng.gen_bool(0.8) {
            map.insert(&key, i);
            model.insert(key, i);
        } else {
            assert_eq!(map.remove(&key), model.remove(&key), "b64 remove");
        }
    }
    map.flush();
    assert_eq!(map.len(), model.len());
    assert_eq!(map.scan_all(), model_stats(model.iter()));
    // Byte prefixes correspond to encoded-key intervals on the inner map.
    let prefix = [0x80u8];
    let expected = model_stats(model.iter().filter(|(k, _)| k.starts_with(&prefix)));
    assert_eq!(map.prefix_stats(&prefix), expected, "non-negative keys");
    // Non-8-byte keys read as absent.
    assert_eq!(map.get(b"odd"), None);
    assert_eq!(map.remove(b""), None);
}
