//! Cross-crate integration test: every data structure of the evaluation
//! (concurrent PMA in all update modes, B+-tree, ART, Masstree-like,
//! Bw-Tree-like) must agree with a `BTreeMap` model on the same operation
//! sequence.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rma_concurrent::common::ConcurrentMap;
use rma_concurrent::workloads::StructureKind;

fn all_kinds() -> Vec<StructureKind> {
    vec![
        StructureKind::Masstree,
        StructureKind::BwTree,
        StructureKind::ArtBTree,
        StructureKind::ArtBTreeLargeLeaves,
        StructureKind::Art,
        StructureKind::PmaSynchronous,
        StructureKind::PmaOneByOne,
        StructureKind::PmaBatch(1),
        StructureKind::PmaLargeSegments,
    ]
}

/// Applies a mixed random operation sequence to the structure and the model,
/// then compares the full contents.
fn run_model_check(kind: StructureKind, seed: u64, ops: usize) {
    let map = kind.build();
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);

    for i in 0..ops {
        let key = rng.gen_range(0..2_000i64);
        let value = i as i64;
        if rng.gen_bool(0.7) {
            map.insert(key, value);
            model.insert(key, value);
        } else {
            map.remove(key);
            model.remove(&key);
        }
    }
    map.flush();

    assert_eq!(map.len(), model.len(), "{}: length mismatch", kind.label());
    // Point lookups agree.
    for key in 0..2_000i64 {
        assert_eq!(
            map.get(key),
            model.get(&key).copied(),
            "{}: lookup mismatch for key {key}",
            kind.label()
        );
    }
    // Ordered scan agrees (count and checksums).
    let stats = map.scan_all();
    assert_eq!(stats.count as usize, model.len(), "{}", kind.label());
    let expected_key_sum: i128 = model.keys().map(|&k| k as i128).sum();
    let expected_value_sum: i128 = model.values().map(|&v| v as i128).sum();
    assert_eq!(stats.key_sum, expected_key_sum, "{}", kind.label());
    assert_eq!(stats.value_sum, expected_value_sum, "{}", kind.label());
    // Range scans agree on an arbitrary sub-range.
    let mut got = Vec::new();
    map.range(250, 1_750, &mut |k, v| got.push((k, v)));
    let expected: Vec<(i64, i64)> = model
        .range(250..=1_750)
        .map(|(&k, &v)| (k, v))
        .collect();
    assert_eq!(got, expected, "{}: range mismatch", kind.label());
}

#[test]
fn every_structure_matches_the_model_on_random_operations() {
    for kind in all_kinds() {
        run_model_check(kind, 0xDEADBEEF, 10_000);
    }
}

#[test]
fn every_structure_matches_the_model_on_a_second_seed() {
    for kind in all_kinds() {
        run_model_check(kind, 42, 6_000);
    }
}

#[test]
fn structures_handle_bulk_build_then_drain() {
    for kind in all_kinds() {
        let map = kind.build();
        for k in 0..5_000i64 {
            map.insert(k, -k);
        }
        map.flush();
        assert_eq!(map.len(), 5_000, "{}", kind.label());
        for k in 0..5_000i64 {
            map.remove(k);
        }
        map.flush();
        assert_eq!(map.len(), 0, "{}", kind.label());
        assert_eq!(map.scan_all().count, 0, "{}", kind.label());
    }
}
